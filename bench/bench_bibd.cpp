// EXP-L1 / EXP-T5 — Lemma 1 (strong expansion) and Theorem 5 (balanced
// subgraph degrees), measured; plus google-benchmark timings of the
// incidence queries that make the memory map practical.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <set>
#include <vector>

#include "bibd/bibd.hpp"
#include "bibd/subgraph.hpp"
#include "recorder.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace meshpram;
using benchutil::BenchRecorder;
using benchutil::WallTimer;

namespace {

void lemma1_table() {
  std::cout << "=== EXP-L1: strong expansion |Gamma_k(S)| = (k-1)|S|+1 "
               "(Lemma 1) ===\n";
  Table t({"q", "d", "|S|", "k", "measured |Gamma_k(S)|", "(k-1)|S|+1"});
  Rng rng(1);
  for (const auto& [q, d] : std::vector<std::pair<i64, int>>{
           {3, 3}, {3, 5}, {4, 3}, {5, 2}, {9, 2}}) {
    Bibd g(q, d);
    const i64 u = rng.range(0, g.num_outputs() - 1);
    for (i64 S : {2, 5, 10}) {
      if (S > g.output_degree()) continue;
      const auto which = rng.sample(g.output_degree(), S);
      for (i64 k = 2; k <= std::min<i64>(q, 3); ++k) {
        std::set<i64> gamma;
        for (i64 r : which) {
          const i64 w = g.output_neighbor(u, r);
          gamma.insert(u);
          i64 added = 0;
          for (i64 cand : g.neighbors(w)) {
            if (cand == u || added == k - 1) continue;
            gamma.insert(cand);
            ++added;
          }
        }
        t.add(q, d, S, k, static_cast<i64>(gamma.size()), (k - 1) * S + 1);
      }
    }
  }
  t.print(std::cout);
}

void theorem5_table() {
  std::cout << "\n=== EXP-T5: subgraph output degrees rho in "
               "{floor(qm/q^d), ceil(qm/q^d)} (Theorem 5) ===\n";
  Table t({"q", "d", "m", "floor", "ceil", "measured min", "measured max",
           "in range"});
  for (const auto& [q, d] : std::vector<std::pair<i64, int>>{{3, 3}, {3, 4},
                                                             {4, 3}, {5, 2}}) {
    const i64 f = bibd_input_count(q, d);
    for (i64 m : {f / 7 + 1, f / 3 + 1, f / 2 + 1, f - 1, f}) {
      BibdSubgraph g(q, d, m);
      std::vector<i64> deg(static_cast<size_t>(g.num_outputs()), 0);
      for (i64 v = 0; v < m; ++v) {
        for (i64 u : g.neighbors(v)) ++deg[static_cast<size_t>(u)];
      }
      i64 lo = deg[0], hi = deg[0];
      for (i64 x : deg) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      const bool ok =
          lo >= g.min_output_degree() && hi <= g.max_output_degree();
      t.add(q, d, m, g.min_output_degree(), g.max_output_degree(), lo, hi,
            ok ? "yes" : "NO");
    }
  }
  t.print(std::cout);
  std::cout << '\n';
}

void BM_Neighbor(benchmark::State& state) {
  Bibd g(3, static_cast<int>(state.range(0)));
  Rng rng(2);
  const i64 w = rng.range(0, g.num_inputs() - 1);
  i64 x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.neighbor(w, x));
    x = (x + 1) % 3;
  }
}
BENCHMARK(BM_Neighbor)->Arg(3)->Arg(5)->Arg(8);

void BM_EdgeRank(benchmark::State& state) {
  Bibd g(3, static_cast<int>(state.range(0)));
  Rng rng(3);
  const i64 w = rng.range(0, g.num_inputs() - 1);
  const i64 u = g.neighbor(w, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.edge_rank(w, u));
  }
}
BENCHMARK(BM_EdgeRank)->Arg(3)->Arg(5)->Arg(8);

void BM_CommonInput(benchmark::State& state) {
  Bibd g(3, static_cast<int>(state.range(0)));
  Rng rng(4);
  const i64 u1 = rng.range(0, g.num_outputs() - 1);
  const i64 u2 = (u1 + 1) % g.num_outputs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.common_input(u1, u2));
  }
}
BENCHMARK(BM_CommonInput)->Arg(3)->Arg(5)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  BenchRecorder rec("bibd");
  {
    const WallTimer timer;
    lemma1_table();
    rec.point("lemma1-table", timer.ms(), /*mesh_steps=*/0);
  }
  {
    const WallTimer timer;
    theorem5_table();
    rec.point("theorem5-table", timer.ms(), /*mesh_steps=*/0);
  }
  rec.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
