// EXP-D1 — SPMD rank-sharded simulation: one PRAM access step on a
// DistMachine at ranks {1, 2, 4}, k = 3, mid-size memory (alpha = 1.5).
//
// Reports wall-clock next to the distributed-run overheads the bit-identity
// contract makes visible: boundary-lane bytes crossing band cuts and time
// each rank spends blocked in collectives. Rank 1 runs the same partitioned
// code path with no exchange, so its wall_ms is the parity reference against
// bench_simulation_mid_mem (k=3 rows); tools/bench_smoke.py enforces it.
//
// The second sweep runs the same points on a ProcMachine — ranks as separate
// worker processes over unix/TCP sockets (config "transport=... ranks=...").
// mesh_steps there must equal the channel run at the same geometry
// (bench_smoke.py's transport-parity gate); wall_ms shows the socket tax.
// One extra point ("recover transport=unix ...") SIGKILLs a worker between
// steps and records the recovery blackout next to the recovered step.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "dist/machine.hpp"
#include "dist/supervisor.hpp"
#include "util/table.hpp"

using namespace meshpram;
using namespace meshpram::benchutil;

namespace {

/// ProcConfig for a bench point: no per-step checkpoint gathers (wall_ms
/// should time the step itself), validation off.
dist::ProcConfig proc_point_config(const SimConfig& cfg, int ranks,
                                   const std::string& transport) {
  dist::ProcConfig pc;
  pc.sim = cfg;
  pc.ranks = ranks;
  pc.validate = 0;
  pc.socket.transport = transport;
  pc.checkpoint_every = 1 << 20;  // recovery restores to the initial snapshot
  return pc;
}

}  // namespace

int main() {
  const double alpha = 1.5;
  const int k = 3;
  std::cout << "=== EXP-D1: distributed rank scaling, alpha = 1.5, k = 3 "
               "===\n";
  set_log_level(LogLevel::Error);  // the t_i<1 warning is expected here
  BenchRecorder rec("dist_scaling");
  rec.set_transport("channel");  // in-process channel hub (threads + queues)
  Table t({"ranks", "n", "M", "T_sim", "wall_ms", "boundary_bytes",
           "barrier_wait_ms"});
  for (int side : {16, 32, 64}) {
    if (side > bench_max_side()) continue;
    const i64 n = static_cast<i64>(side) * side;
    const i64 M = static_cast<i64>(std::llround(std::pow(n, alpha)));
    SimConfig cfg;
    cfg.mesh_rows = side;
    cfg.mesh_cols = side;
    cfg.num_vars = M;
    cfg.q = 3;
    cfg.k = k;
    cfg.sort_mode = SortMode::Analytic;
    cfg.fault_plan_from_env = false;
    const int max_ranks = dist::DistMachine::max_ranks(cfg);
    for (int ranks : {1, 2, 4}) {
      if (ranks > max_ranks) {
        std::cout << "side=" << side << " ranks=" << ranks
                  << ": skipped (band cuts admit at most " << max_ranks
                  << " ranks)\n";
        continue;
      }
      dist::DistConfig dc;
      dc.sim = cfg;
      dc.ranks = ranks;
      dc.validate = 0;
      dist::DistMachine machine(dc);
      Rng rng(7);
      const auto reqs = random_requests(n, M, rng);
      StepStats st;
      const WallTimer timer;
      machine.step(reqs, &st);
      const double wall_ms = timer.ms();
      rec.set_ranks(ranks);  // last point's rank count also stamps the run
      rec.point_dist("ranks=" + std::to_string(ranks) +
                         " k=" + std::to_string(k) +
                         " side=" + std::to_string(side),
                     wall_ms, st.total_steps, machine.boundary_bytes(),
                     machine.wait_totals().wait_ms);
      t.add(ranks, n, M, st.total_steps, wall_ms, machine.boundary_bytes(),
            machine.wait_totals().wait_ms);
    }
  }
  // Multi-process sweep: same geometry, ranks as worker processes. Bounded
  // to side <= 32 — process spawn/restore costs dominate beyond that without
  // adding information (the parity gate only needs matched points).
  std::cout << "\n--- multi-process ranks (socket transport) ---\n";
  Table tp({"transport", "ranks", "n", "M", "T_sim", "wall_ms",
            "boundary_bytes", "barrier_wait_ms"});
  for (int side : {16, 32}) {
    if (side > bench_max_side()) continue;
    const i64 n = static_cast<i64>(side) * side;
    const i64 M = static_cast<i64>(std::llround(std::pow(n, alpha)));
    SimConfig cfg;
    cfg.mesh_rows = side;
    cfg.mesh_cols = side;
    cfg.num_vars = M;
    cfg.q = 3;
    cfg.k = k;
    cfg.sort_mode = SortMode::Analytic;
    cfg.fault_plan_from_env = false;
    const int max_ranks = dist::ProcMachine::max_ranks(cfg);
    for (const std::string transport : {"unix", "tcp"}) {
      for (int ranks : {1, 2, 4}) {
        if (ranks > max_ranks) continue;
        dist::ProcMachine machine(proc_point_config(cfg, ranks, transport));
        Rng rng(7);
        const auto reqs = random_requests(n, M, rng);
        StepStats st;
        const WallTimer timer;
        machine.step(reqs, &st);
        const double wall_ms = timer.ms();
        rec.point_dist("transport=" + transport +
                           " ranks=" + std::to_string(ranks) +
                           " k=" + std::to_string(k) +
                           " side=" + std::to_string(side),
                       wall_ms, st.total_steps, machine.boundary_bytes(),
                       machine.wait_totals().wait_ms);
        tp.add(transport, ranks, n, M, st.total_steps, wall_ms,
               machine.boundary_bytes(), machine.wait_totals().wait_ms);
      }
    }
  }

  // Recovery blackout: SIGKILL a worker between steps and time the recovered
  // step. mesh_steps stays deterministic (checkpoint restore + replay is
  // bit-identical); the blackout column is informational.
  {
    const int side = 16;
    const i64 n = static_cast<i64>(side) * side;
    const i64 M = static_cast<i64>(std::llround(std::pow(n, alpha)));
    SimConfig cfg;
    cfg.mesh_rows = side;
    cfg.mesh_cols = side;
    cfg.num_vars = M;
    cfg.q = 3;
    cfg.k = k;
    cfg.sort_mode = SortMode::Analytic;
    cfg.fault_plan_from_env = false;
    if (side <= bench_max_side() &&
        dist::ProcMachine::max_ranks(cfg) >= 2) {
      dist::ProcConfig pc = proc_point_config(cfg, 2, "unix");
      pc.socket.heartbeat_ms = 50;
      pc.socket.recv_deadline_ms = 5000;
      dist::ProcMachine machine(pc);
      Rng rng(7);
      const auto reqs = random_requests(n, M, rng);
      machine.step(reqs);
      machine.kill_rank(1);
      Rng rng2(8);
      const auto reqs2 = random_requests(n, M, rng2);
      StepStats st;
      const WallTimer timer;
      machine.step(reqs2, &st);
      const double wall_ms = timer.ms();
      const auto& rs = machine.recovery();
      rec.point_dist("recover transport=unix ranks=2 k=" + std::to_string(k) +
                         " side=" + std::to_string(side),
                     wall_ms, st.total_steps, machine.boundary_bytes(),
                     machine.wait_totals().wait_ms,
                     static_cast<double>(rs.last_blackout_ms));
      std::cout << "recover: blackout " << rs.last_blackout_ms << " ms ("
                << rs.respawns << " respawn)\n";
    }
  }

  rec.set_ranks(4);  // the sweep's headline configuration
  t.print(std::cout);
  tp.print(std::cout);
  rec.write();
  return 0;
}
