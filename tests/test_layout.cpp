// Physical node-order abstraction (DESIGN.md §12): the Hilbert layout and
// the SIMD kernel variants are pure physical optimizations — every
// PRAM-visible observable (read results, StepStats, congestion counter
// grids) must be bit-identical to the row-major scalar reference at every
// thread count. This suite is the enforcement (`ctest -L layout`).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "mesh/node_order.hpp"
#include "mesh/parallel.hpp"
#include "protocol/simulator.hpp"
#include "routing/greedy.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {
namespace {

// ---------------------------------------------------------------------------
// Curve structure.

const std::vector<std::pair<int, int>>& curve_sizes() {
  static const std::vector<std::pair<int, int>> sizes = {
      {1, 1},  {1, 7},  {7, 1},  {2, 2},  {2, 3},  {3, 2},  {3, 3},
      {4, 4},  {4, 5},  {5, 4},  {4, 7},  {5, 5},  {6, 9},  {8, 8},
      {9, 6},  {12, 12}, {13, 11}, {16, 16}, {16, 32}, {31, 33}, {32, 32}};
  return sizes;
}

TEST(NodeOrder, BijectionForEverySizeAndKind) {
  for (const auto& [rows, cols] : curve_sizes()) {
    for (const NodeOrderKind kind :
         {NodeOrderKind::RowMajor, NodeOrderKind::Hilbert}) {
      const NodeOrder order(rows, cols, kind);
      const i32 n = static_cast<i32>(rows) * cols;
      std::vector<char> seen(static_cast<size_t>(n), 0);
      for (i32 id = 0; id < n; ++id) {
        const i32 slot = order.slot_of(id);
        ASSERT_GE(slot, 0) << rows << "x" << cols;
        ASSERT_LT(slot, n) << rows << "x" << cols;
        ASSERT_EQ(order.id_of(slot), id)
            << node_order_name(kind) << " " << rows << "x" << cols;
        seen[static_cast<size_t>(slot)] = 1;
      }
      for (const char s : seen) ASSERT_TRUE(s);
    }
  }
}

TEST(NodeOrder, RowMajorIsTheIdentity) {
  const NodeOrder order(7, 13, NodeOrderKind::RowMajor);
  EXPECT_TRUE(order.identity());
  for (i32 id = 0; id < 7 * 13; ++id) {
    EXPECT_EQ(order.slot_of(id), id);
    EXPECT_EQ(order.id_of(id), id);
  }
}

/// The generalized Hilbert curve (gilbert2d) keeps consecutive slots
/// mesh-adjacent with one caveat: for some odd-by-even splits the recursion
/// joins two halves with a single diagonal step (Manhattan distance 2). That
/// is a property of the reference algorithm, not a transcription bug — so
/// the contract is: every step has distance <= 2, at most ONE step per curve
/// exceeds 1, and even-by-even (in particular power-of-two) grids have none.
TEST(NodeOrder, HilbertStepsAreMeshAdjacentUpToOneDiagonal) {
  for (const auto& [rows, cols] : curve_sizes()) {
    std::vector<i32> id_at_slot;
    fill_curve_order(rows, cols, NodeOrderKind::Hilbert, id_at_slot);
    ASSERT_EQ(id_at_slot.size(), static_cast<size_t>(rows) * cols);
    int jumps = 0;
    for (size_t s = 1; s < id_at_slot.size(); ++s) {
      const i32 a = id_at_slot[s - 1];
      const i32 b = id_at_slot[s];
      const int dist = std::abs(a / cols - b / cols) +
                       std::abs(a % cols - b % cols);
      ASSERT_GE(dist, 1) << rows << "x" << cols << " repeats a node";
      ASSERT_LE(dist, 2) << rows << "x" << cols << " jumps at slot " << s;
      if (dist == 2) ++jumps;
    }
    EXPECT_LE(jumps, 1) << rows << "x" << cols;
    if (rows % 2 == 0 && cols % 2 == 0) {
      EXPECT_EQ(jumps, 0) << rows << "x" << cols
                          << ": even-by-even grids have a seamless curve";
    }
  }
}

/// The cache-oblivious property the layout exists for: an aligned submesh of
/// the tessellation occupies few contiguous runs of the slot space. Under
/// row-major a side-s submesh of a side-N mesh always needs s runs; under
/// the Hilbert order the run count stays O(1) per submesh at every level.
TEST(NodeOrder, HilbertKeepsAlignedSubmeshesContiguous) {
  const int side = 32;
  const NodeOrder order(side, side, NodeOrderKind::Hilbert);
  for (int sub = 4; sub <= 16; sub *= 2) {
    for (int r0 = 0; r0 < side; r0 += sub) {
      for (int c0 = 0; c0 < side; c0 += sub) {
        std::vector<i32> slots;
        for (int r = r0; r < r0 + sub; ++r) {
          for (int c = c0; c < c0 + sub; ++c) {
            slots.push_back(order.slot_of(r * side + c));
          }
        }
        std::sort(slots.begin(), slots.end());
        int runs = 1;
        for (size_t i = 1; i < slots.size(); ++i) {
          if (slots[i] != slots[i - 1] + 1) ++runs;
        }
        // Power-of-two aligned blocks of a power-of-two Hilbert grid are a
        // single run; allow a little slack rather than encode the exact
        // recursion.
        EXPECT_LE(runs, 4) << sub << "x" << sub << " block at (" << r0 << ","
                           << c0 << ")";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end bit-identity: Hilbert vs row-major, SIMD vs scalar.

struct StepTrace {
  std::vector<i64> reads;
  StepStats stats;
  std::vector<i64> max_queue;
  std::vector<i64> forwarded;
  std::vector<i64> copies_touched;
  std::vector<i64> survivors;
};

struct WorkloadCfg {
  int side = 16;
  int k = 2;
  i64 num_vars = 1080;
  int threads = 1;
  bool stripe_path = false;
};

/// Fixed write-then-read workload under the ambient node order and SIMD
/// dispatch; returns everything an observer can see. Congestion counters are
/// sampled (telemetry on) so layout bugs in the counter indexing show up too.
StepTrace run_workload(const WorkloadCfg& w) {
  set_execution_threads(w.threads);
  if (w.stripe_path) set_stripe_min_nodes(1);
  telemetry::set_enabled(true);
  set_log_level(LogLevel::Error);
  SimConfig cfg;
  cfg.mesh_rows = w.side;
  cfg.mesh_cols = w.side;
  cfg.num_vars = w.num_vars;
  cfg.q = 3;
  cfg.k = w.k;
  cfg.sort_mode = SortMode::Simulated;
  PramMeshSimulator sim(cfg);
  const i64 n = sim.processors();

  Rng rng(2026);
  std::vector<i64> vars(static_cast<size_t>(n));
  std::vector<i64> values(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    vars[static_cast<size_t>(i)] = (i * 7 + 3) % cfg.num_vars;
    values[static_cast<size_t>(i)] = rng.range(0, 1 << 20);
  }
  sim.write_step(vars, values);

  StepTrace trace;
  trace.reads = sim.read_step(vars, &trace.stats);
  EXPECT_EQ(sim.mesh().total_packets(sim.mesh().whole()), 0)
      << "buffers must drain after a step";
  const telemetry::MeshCounters& c = sim.mesh().counters();
  trace.max_queue = c.max_queue();
  trace.forwarded = c.forwarded();
  trace.copies_touched = c.copies_touched();
  trace.survivors = c.survivors();
  telemetry::set_enabled(false);
  if (w.stripe_path) set_stripe_min_nodes(0);
  set_execution_threads(0);
  return trace;
}

void expect_same(const StepTrace& a, const StepTrace& b, const char* what) {
  EXPECT_EQ(a.reads, b.reads) << "read results differ: " << what;
  EXPECT_EQ(a.stats.total_steps, b.stats.total_steps) << what;
  EXPECT_EQ(a.stats.culling_steps, b.stats.culling_steps) << what;
  EXPECT_EQ(a.stats.forward_steps, b.stats.forward_steps) << what;
  EXPECT_EQ(a.stats.return_steps, b.stats.return_steps) << what;
  EXPECT_EQ(a.stats.packets, b.stats.packets) << what;
  EXPECT_EQ(a.stats.forward_stage_steps, b.stats.forward_stage_steps) << what;
  EXPECT_EQ(a.stats.culling.steps, b.stats.culling.steps) << what;
  EXPECT_EQ(a.stats.culling.max_page_load, b.stats.culling.max_page_load)
      << what;
  EXPECT_EQ(a.stats.culling.selected_copies, b.stats.culling.selected_copies)
      << what;
  // Congestion counters are indexed by node id in the exported grids, so
  // they must not move under a physical relayout either.
  EXPECT_EQ(a.max_queue, b.max_queue) << "max_queue grid differs: " << what;
  EXPECT_EQ(a.forwarded, b.forwarded) << "forwarded grid differs: " << what;
  EXPECT_EQ(a.copies_touched, b.copies_touched)
      << "copies_touched grid differs: " << what;
  EXPECT_EQ(a.survivors, b.survivors) << "survivors grid differs: " << what;
}

class LayoutInvariance : public ::testing::Test {
 protected:
  void TearDown() override {
    set_node_order_override(std::nullopt);
    simd::set_enabled(true);  // cpu/env gate re-applies inside
    set_execution_threads(0);
  }
};

TEST_F(LayoutInvariance, HilbertMatchesRowMajorAcrossConfigsAndThreads) {
  const int hw = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
  // Side 12 exercises the odd-by-even gilbert sub-splits; side 8 with k=3
  // exercises the deepest tessellation the small suite supports.
  const WorkloadCfg configs[] = {
      {16, 2, 1080, 1, false},
      {12, 2, 1080, 1, false},
      {8, 3, 1080, 1, false},
      {16, 2, 1080, 2, false},
      {16, 2, 1080, hw, true},  // stripe teams + relayout together
  };
  for (const WorkloadCfg& w : configs) {
    set_node_order_override(NodeOrderKind::RowMajor);
    const StepTrace row_major = run_workload(w);
    set_node_order_override(NodeOrderKind::Hilbert);
    const StepTrace hilbert = run_workload(w);
    const std::string what = "side=" + std::to_string(w.side) +
                             " k=" + std::to_string(w.k) +
                             " threads=" + std::to_string(w.threads) +
                             (w.stripe_path ? " stripes" : "");
    expect_same(row_major, hilbert, what.c_str());
  }
}

TEST_F(LayoutInvariance, SimdMatchesScalarEndToEnd) {
  const WorkloadCfg w{16, 2, 1080, 1, false};
  set_node_order_override(NodeOrderKind::Hilbert);
  simd::set_enabled(false);
  ASSERT_FALSE(simd::available());
  const StepTrace scalar = run_workload(w);
  simd::set_enabled(true);
  if (!simd::available()) {
    GTEST_SKIP() << "build or CPU has no AVX2 — scalar is the only variant";
  }
  const StepTrace vec = run_workload(w);
  expect_same(scalar, vec, "simd vs scalar");
}

// ---------------------------------------------------------------------------
// Kernel-level equivalence on random inputs (covers lane remainders and the
// record layouts the end-to-end run may not hit).

class SimdKernels : public ::testing::Test {
 protected:
  void SetUp() override {
    simd::set_enabled(true);
    if (!simd::available()) {
      GTEST_SKIP() << "build or CPU has no AVX2 — nothing to compare";
    }
  }
  void TearDown() override { simd::set_enabled(true); }
};

TEST_F(SimdKernels, TransitScanMatchesScalar) {
  Rng rng(7);
  for (const i64 n : {0, 1, 3, 4, 5, 8, 33, 1000}) {
    std::vector<unsigned char> recs(static_cast<size_t>(n) * 8);
    for (i64 i = 0; i < n; ++i) {
      const u32 handle = static_cast<u32>(rng.range(0, 1 << 30));
      const i16 dest_r = static_cast<i16>(rng.range(0, 127));
      const i16 dest_c = static_cast<i16>(rng.range(0, 127));
      unsigned char* p = recs.data() + i * 8;
      std::memcpy(p, &handle, 4);
      std::memcpy(p + 4, &dest_r, 2);
      std::memcpy(p + 6, &dest_c, 2);
    }
    const i16 at_r = static_cast<i16>(rng.range(0, 127));
    const i16 at_c = static_cast<i16>(rng.range(0, 127));
    std::vector<unsigned char> dir_s(static_cast<size_t>(n) + 1);
    std::vector<unsigned char> dir_v(static_cast<size_t>(n) + 1);
    std::vector<u16> rem_s(static_cast<size_t>(n) + 1);
    std::vector<u16> rem_v(static_cast<size_t>(n) + 1);
    simd::set_enabled(false);
    simd::transit_scan(recs.data(), n, at_r, at_c, dir_s.data(), rem_s.data());
    simd::set_enabled(true);
    simd::transit_scan(recs.data(), n, at_r, at_c, dir_v.data(), rem_v.data());
    EXPECT_EQ(dir_s, dir_v) << "n=" << n;
    EXPECT_EQ(rem_s, rem_v) << "n=" << n;
  }
}

TEST_F(SimdKernels, FirstKeyViolationMatchesScalar) {
  Rng rng(11);
  for (const i64 n : {0, 1, 2, 4, 5, 6, 64, 257}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<u64> recs(static_cast<size_t>(n) * 4);  // 32-byte records
      u64 key = 0;
      for (i64 i = 0; i < n; ++i) {
        // Mostly increasing with occasional plateaus/drops so the violation
        // can land at any lane of a vector block.
        const i64 roll = rng.range(0, 9);
        if (roll == 0 && key > 0) key -= 1;
        else if (roll > 2) key += static_cast<u64>(rng.range(1, 5));
        recs[static_cast<size_t>(i) * 4] = key;
      }
      simd::set_enabled(false);
      const i64 want = simd::first_key_violation(recs.data(), 32, n);
      simd::set_enabled(true);
      const i64 got = simd::first_key_violation(recs.data(), 32, n);
      EXPECT_EQ(want, got) << "n=" << n << " trial=" << trial;
    }
  }
  // Unsigned order: the hole key ~0 must compare above every real key.
  std::vector<u64> recs(8 * 4, 0);
  for (i64 i = 0; i < 7; ++i) recs[static_cast<size_t>(i) * 4] = u64(i);
  recs[7 * 4] = ~u64{0};
  simd::set_enabled(false);
  const i64 want = simd::first_key_violation(recs.data(), 32, 8);
  simd::set_enabled(true);
  EXPECT_EQ(simd::first_key_violation(recs.data(), 32, 8), want);
  EXPECT_EQ(want, 7);  // strictly increasing throughout
}

TEST_F(SimdKernels, AndBytesMatchesScalar) {
  Rng rng(13);
  for (const i64 n : {0, 1, 31, 32, 33, 100, 4096}) {
    std::vector<unsigned char> a(static_cast<size_t>(n));
    std::vector<unsigned char> b(static_cast<size_t>(n));
    for (i64 i = 0; i < n; ++i) {
      a[static_cast<size_t>(i)] = static_cast<unsigned char>(rng.range(0, 255));
      b[static_cast<size_t>(i)] = static_cast<unsigned char>(rng.range(0, 255));
    }
    std::vector<unsigned char> out_s(static_cast<size_t>(n));
    std::vector<unsigned char> out_v(static_cast<size_t>(n));
    simd::set_enabled(false);
    simd::and_bytes(out_s.data(), a.data(), b.data(), n);
    simd::set_enabled(true);
    simd::and_bytes(out_v.data(), a.data(), b.data(), n);
    EXPECT_EQ(out_s, out_v) << "n=" << n;
  }
}

}  // namespace
}  // namespace meshpram
