// Determinism of the host-parallel execution engine: the counted mesh steps
// and the PRAM-visible results must be bit-identical at any thread count
// (DESIGN.md §7 — per-region costs merge in region order after the join).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mesh/parallel.hpp"
#include "protocol/simulator.hpp"
#include "routing/greedy.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {
namespace {

struct StepTrace {
  std::vector<i64> reads;
  StepStats stats;
  // Congestion counter grids captured after the read step (all-zero unless
  // the run sampled with telemetry on).
  std::vector<i64> max_queue;
  std::vector<i64> forwarded;
  std::vector<i64> copies_touched;
  std::vector<i64> survivors;
};

/// Runs a fixed two-step PRAM workload (write everything, read it back) and
/// returns everything an observer can see. With `stripe_path` the intra-region
/// stripe threshold is forced to 1 so every route/sort call on the 16x16 mesh
/// takes the stripe-team path, and telemetry sampling is switched on so the
/// congestion counter grids fill.
StepTrace run_workload(int threads, bool stripe_path = false) {
  set_execution_threads(threads);
  if (stripe_path) {
    set_stripe_min_nodes(1);
    telemetry::set_enabled(true);
  }
  set_log_level(LogLevel::Error);
  SimConfig cfg;
  cfg.mesh_rows = 16;
  cfg.mesh_cols = 16;
  cfg.num_vars = 1080;
  cfg.q = 3;
  cfg.k = 2;
  cfg.sort_mode = SortMode::Simulated;
  PramMeshSimulator sim(cfg);
  const i64 n = sim.processors();

  Rng rng(2024);
  std::vector<i64> vars(static_cast<size_t>(n));
  std::vector<i64> values(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    vars[static_cast<size_t>(i)] = (i * 7 + 3) % cfg.num_vars;
    values[static_cast<size_t>(i)] = rng.range(0, 1 << 20);
  }
  sim.write_step(vars, values);

  StepTrace trace;
  trace.reads = sim.read_step(vars, &trace.stats);
  EXPECT_EQ(sim.mesh().total_packets(sim.mesh().whole()), 0)
      << "buffers must drain after a step";
  const telemetry::MeshCounters& c = sim.mesh().counters();
  trace.max_queue = c.max_queue();
  trace.forwarded = c.forwarded();
  trace.copies_touched = c.copies_touched();
  trace.survivors = c.survivors();
  if (stripe_path) {
    telemetry::set_enabled(false);
    set_stripe_min_nodes(0);  // restore the environment default
  }
  return trace;
}

void expect_same(const StepTrace& a, const StepTrace& b, int threads) {
  EXPECT_EQ(a.reads, b.reads) << "read results differ at " << threads
                              << " threads";
  EXPECT_EQ(a.stats.total_steps, b.stats.total_steps);
  EXPECT_EQ(a.stats.culling_steps, b.stats.culling_steps);
  EXPECT_EQ(a.stats.forward_steps, b.stats.forward_steps);
  EXPECT_EQ(a.stats.return_steps, b.stats.return_steps);
  EXPECT_EQ(a.stats.packets, b.stats.packets);
  EXPECT_EQ(a.stats.forward_stage_steps, b.stats.forward_stage_steps)
      << "per-stage step vector differs at " << threads << " threads";
  EXPECT_EQ(a.stats.culling.steps, b.stats.culling.steps);
  EXPECT_EQ(a.stats.culling.max_page_load, b.stats.culling.max_page_load);
  EXPECT_EQ(a.stats.culling.selected_copies, b.stats.culling.selected_copies);
}

void expect_same_counters(const StepTrace& a, const StepTrace& b,
                          int threads) {
  EXPECT_EQ(a.max_queue, b.max_queue)
      << "max_queue grid differs at " << threads << " threads";
  EXPECT_EQ(a.forwarded, b.forwarded)
      << "forwarded grid differs at " << threads << " threads";
  EXPECT_EQ(a.copies_touched, b.copies_touched)
      << "copies_touched grid differs at " << threads << " threads";
  EXPECT_EQ(a.survivors, b.survivors)
      << "survivors grid differs at " << threads << " threads";
}

TEST(ParallelEngine, StepStatsAreThreadCountInvariant) {
  const StepTrace seq = run_workload(1);
  // Reads must return what was written, independent of the engine.
  for (i64 v : seq.reads) EXPECT_GE(v, 0);

  const int hw = std::max(2u, std::thread::hardware_concurrency());
  for (const int threads : {2, hw}) {
    const StepTrace par = run_workload(threads);
    expect_same(seq, par, threads);
  }
  set_execution_threads(0);  // restore the environment default
}

// The intra-region path (DESIGN.md §9): with the stripe threshold forced to 1
// every route_greedy call runs on a row-stripe team and every meshsort round
// runs line-parallel, even on this small mesh. Reads, every StepStats field,
// and all four congestion counter grids must be bit-identical across thread
// counts AND identical to the serial whole-region path (stripes never
// engaged), which is the pre-stripe behaviour.
TEST(ParallelEngine, IntraRegionStripesAreThreadCountInvariant) {
  const StepTrace serial = run_workload(1, /*stripe_path=*/false);
  const StepTrace base = run_workload(1, /*stripe_path=*/true);
  expect_same(serial, base, 1);  // stripe decomposition changes nothing

  const int hw = std::max(2u, std::thread::hardware_concurrency());
  for (const int threads : {2, hw}) {
    const StepTrace par = run_workload(threads, /*stripe_path=*/true);
    expect_same(base, par, threads);
    expect_same_counters(base, par, threads);
  }
  set_execution_threads(0);  // restore the environment default
}

TEST(ParallelEngine, ForEachIndexCoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.for_each_index(1000, [&](i64 i) { ++hits[static_cast<size_t>(i)]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelEngine, ForEachChunkCoversAllIndicesOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  pool.for_each_chunk(257, 10, [&](i64 lo, i64 hi) {
    for (i64 i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelEngine, ExceptionsPropagateAndPoolStaysUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.for_each_index(10,
                          [&](i64 i) {
                            if (i == 3) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  // The pool survives the throw and runs the next loop normally.
  std::vector<int> hits(20, 0);
  pool.for_each_index(20, [&](i64 i) { ++hits[static_cast<size_t>(i)]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelEngine, ParallelForRegionsMergesCostsInRegionOrder) {
  Mesh mesh(8, 8);
  const auto subs = mesh.whole().grid_split(4);
  const auto costs = parallel_for_regions(
      mesh, subs, [&](const Region& g, size_t i) {
        return g.size() * 100 + static_cast<i64>(i);
      });
  ASSERT_EQ(costs.size(), subs.size());
  for (size_t i = 0; i < costs.size(); ++i) {
    EXPECT_EQ(costs[i], subs[i].size() * 100 + static_cast<i64>(i));
  }
}

}  // namespace
}  // namespace meshpram
