// Determinism of the host-parallel execution engine: the counted mesh steps
// and the PRAM-visible results must be bit-identical at any thread count
// (DESIGN.md §7 — per-region costs merge in region order after the join).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mesh/parallel.hpp"
#include "protocol/simulator.hpp"
#include "routing/greedy.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {
namespace {

struct StepTrace {
  std::vector<i64> reads;
  StepStats stats;
};

/// Runs a fixed two-step PRAM workload (write everything, read it back) and
/// returns everything an observer can see.
StepTrace run_workload(int threads) {
  set_execution_threads(threads);
  set_log_level(LogLevel::Error);
  SimConfig cfg;
  cfg.mesh_rows = 16;
  cfg.mesh_cols = 16;
  cfg.num_vars = 1080;
  cfg.q = 3;
  cfg.k = 2;
  cfg.sort_mode = SortMode::Simulated;
  PramMeshSimulator sim(cfg);
  const i64 n = sim.processors();

  Rng rng(2024);
  std::vector<i64> vars(static_cast<size_t>(n));
  std::vector<i64> values(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    vars[static_cast<size_t>(i)] = (i * 7 + 3) % cfg.num_vars;
    values[static_cast<size_t>(i)] = rng.range(0, 1 << 20);
  }
  sim.write_step(vars, values);

  StepTrace trace;
  trace.reads = sim.read_step(vars, &trace.stats);
  EXPECT_EQ(sim.mesh().total_packets(sim.mesh().whole()), 0)
      << "buffers must drain after a step";
  return trace;
}

void expect_same(const StepTrace& a, const StepTrace& b, int threads) {
  EXPECT_EQ(a.reads, b.reads) << "read results differ at " << threads
                              << " threads";
  EXPECT_EQ(a.stats.total_steps, b.stats.total_steps);
  EXPECT_EQ(a.stats.culling_steps, b.stats.culling_steps);
  EXPECT_EQ(a.stats.forward_steps, b.stats.forward_steps);
  EXPECT_EQ(a.stats.return_steps, b.stats.return_steps);
  EXPECT_EQ(a.stats.packets, b.stats.packets);
  EXPECT_EQ(a.stats.forward_stage_steps, b.stats.forward_stage_steps)
      << "per-stage step vector differs at " << threads << " threads";
  EXPECT_EQ(a.stats.culling.steps, b.stats.culling.steps);
  EXPECT_EQ(a.stats.culling.max_page_load, b.stats.culling.max_page_load);
  EXPECT_EQ(a.stats.culling.selected_copies, b.stats.culling.selected_copies);
}

TEST(ParallelEngine, StepStatsAreThreadCountInvariant) {
  const StepTrace seq = run_workload(1);
  // Reads must return what was written, independent of the engine.
  for (i64 v : seq.reads) EXPECT_GE(v, 0);

  const int hw = std::max(2u, std::thread::hardware_concurrency());
  for (const int threads : {2, hw}) {
    const StepTrace par = run_workload(threads);
    expect_same(seq, par, threads);
  }
  set_execution_threads(0);  // restore the environment default
}

TEST(ParallelEngine, ForEachIndexCoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.for_each_index(1000, [&](i64 i) { ++hits[static_cast<size_t>(i)]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelEngine, ForEachChunkCoversAllIndicesOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  pool.for_each_chunk(257, 10, [&](i64 lo, i64 hi) {
    for (i64 i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelEngine, ExceptionsPropagateAndPoolStaysUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.for_each_index(10,
                          [&](i64 i) {
                            if (i == 3) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  // The pool survives the throw and runs the next loop normally.
  std::vector<int> hits(20, 0);
  pool.for_each_index(20, [&](i64 i) { ++hits[static_cast<size_t>(i)]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelEngine, ParallelForRegionsMergesCostsInRegionOrder) {
  Mesh mesh(8, 8);
  const auto subs = mesh.whole().grid_split(4);
  const auto costs = parallel_for_regions(
      mesh, subs, [&](const Region& g, size_t i) {
        return g.size() * 100 + static_cast<i64>(i);
      });
  ASSERT_EQ(costs.size(), subs.size());
  for (size_t i = 0; i < costs.size(); ++i) {
    EXPECT_EQ(costs[i], subs[i].size() * 100 + static_cast<i64>(i));
  }
}

}  // namespace
}  // namespace meshpram
