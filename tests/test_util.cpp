// Unit tests for src/util: exact integer math, RNG determinism, statistics,
// table/CSV formatting, error macros.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace meshpram {
namespace {

TEST(Math, IpowBasics) {
  EXPECT_EQ(ipow(3, 0), 1);
  EXPECT_EQ(ipow(3, 1), 3);
  EXPECT_EQ(ipow(3, 7), 2187);
  EXPECT_EQ(ipow(2, 40), 1099511627776LL);
  EXPECT_EQ(ipow(0, 0), 1);
  EXPECT_EQ(ipow(0, 5), 0);
  EXPECT_EQ(ipow(1, 1000), 1);
}

TEST(Math, IpowOverflowThrows) {
  EXPECT_THROW(ipow(10, 40), InternalError);
  EXPECT_THROW(ipow(2, 64), InternalError);
}

TEST(Math, IpowRejectsNegative) {
  EXPECT_THROW(ipow(-2, 3), ConfigError);
  EXPECT_THROW(ipow(2, -1), ConfigError);
}

TEST(Math, IsqrtExhaustiveSmall) {
  for (i64 x = 0; x < 5000; ++x) {
    const i64 r = isqrt(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
  }
}

TEST(Math, IsqrtLargeValues) {
  EXPECT_EQ(isqrt(1LL << 62), 1LL << 31);
  EXPECT_EQ(isqrt((1LL << 62) - 1), (1LL << 31) - 1);
  const i64 big = 3037000499LL;  // floor(sqrt(2^63 - 1))
  EXPECT_EQ(isqrt(big * big), big);
  EXPECT_EQ(isqrt(big * big + big), big);  // +2*big would overflow i64
  EXPECT_EQ(isqrt(std::numeric_limits<i64>::max()), big);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_EQ(ceil_div(9, 3), 3);
}

TEST(Math, Ilog) {
  EXPECT_EQ(ilog(2, 1), 0);
  EXPECT_EQ(ilog(2, 2), 1);
  EXPECT_EQ(ilog(2, 3), 1);
  EXPECT_EQ(ilog(2, 1024), 10);
  EXPECT_EQ(ilog(3, 2187), 7);
  EXPECT_EQ(ilog(3, 2186), 6);
}

TEST(Math, IsPrime) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
}

TEST(Math, PrimePowerDecompose) {
  EXPECT_EQ(prime_power_decompose(2), (std::pair<i64, int>{2, 1}));
  EXPECT_EQ(prime_power_decompose(3), (std::pair<i64, int>{3, 1}));
  EXPECT_EQ(prime_power_decompose(4), (std::pair<i64, int>{2, 2}));
  EXPECT_EQ(prime_power_decompose(8), (std::pair<i64, int>{2, 3}));
  EXPECT_EQ(prime_power_decompose(9), (std::pair<i64, int>{3, 2}));
  EXPECT_EQ(prime_power_decompose(27), (std::pair<i64, int>{3, 3}));
  EXPECT_EQ(prime_power_decompose(125), (std::pair<i64, int>{5, 3}));
  EXPECT_THROW(prime_power_decompose(6), ConfigError);
  EXPECT_THROW(prime_power_decompose(12), ConfigError);
  EXPECT_THROW(prime_power_decompose(1), ConfigError);
  EXPECT_THROW(prime_power_decompose(0), ConfigError);
}

TEST(Math, BibdInputCount) {
  // f(d) = q^{d-1} (q^d - 1)/(q - 1)
  EXPECT_EQ(bibd_input_count(3, 1), 1);
  EXPECT_EQ(bibd_input_count(3, 2), 3 * 4);     // 3 * (9-1)/2
  EXPECT_EQ(bibd_input_count(3, 3), 9 * 13);    // 117
  EXPECT_EQ(bibd_input_count(3, 4), 27 * 40);   // 1080
  EXPECT_EQ(bibd_input_count(3, 5), 81 * 121);  // 9801
  EXPECT_EQ(bibd_input_count(2, 3), 4 * 7);
  EXPECT_EQ(bibd_input_count(4, 2), 4 * 5);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  bool all_equal = true;
  bool any_diff_seed_diff = false;
  for (int i = 0; i < 100; ++i) {
    const u64 va = a();
    if (va != b()) all_equal = false;
    if (va != c()) any_diff_seed_diff = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_diff);
}

TEST(Rng, BelowInRangeAndCoversValues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 2000; ++i) {
    const u64 v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++seen[static_cast<size_t>(v)];
  }
  for (int count : seen) EXPECT_GT(count, 100);  // roughly uniform
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const i64 v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SampleDistinctAndInRange) {
  Rng rng(3);
  const auto s = rng.sample(100, 30);
  ASSERT_EQ(s.size(), 30u);
  std::set<i64> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (i64 v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(Rng, SampleFullRange) {
  Rng rng(3);
  const auto s = rng.sample(10, 10);
  std::set<i64> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Stats, Summarize) {
  const auto s = summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummarizeEmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const auto s = summarize({7});
  EXPECT_DOUBLE_EQ(s.mean, 7);
  EXPECT_DOUBLE_EQ(s.stddev, 0);
}

TEST(Stats, LinearFitExact) {
  const auto f = fit_linear({0, 1, 2, 3}, {1, 3, 5, 7});
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, PowerLawFitRecoversExponent) {
  std::vector<double> ns, ts;
  for (double n : {256.0, 1024.0, 4096.0, 16384.0}) {
    ns.push_back(n);
    ts.push_back(3.5 * std::pow(n, 0.625));
  }
  const auto f = fit_power_law(ns, ts);
  EXPECT_NEAR(f.slope, 0.625, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.5, 1e-6);
}

TEST(Stats, FitRejectsDegenerate) {
  EXPECT_THROW(fit_linear({1}, {1}), ConfigError);
  EXPECT_THROW(fit_linear({1, 1}, {1, 2}), ConfigError);
  EXPECT_THROW(fit_power_law({1, -2}, {1, 2}), ConfigError);
}

TEST(Table, FormatsAndAligns) {
  Table t({"n", "steps"});
  t.add(1024, 3.14159);
  t.add(16384, 2.0);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("n"), std::string::npos);
  EXPECT_NE(s.find("steps"), std::string::npos);
  EXPECT_NE(s.find("1024"), std::string::npos);
  EXPECT_NE(s.find("3.142"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), ConfigError);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(2.5), "2.5");
  EXPECT_EQ(format_double(0.0), "0");
  // Very large/small use scientific notation.
  EXPECT_NE(format_double(1.23e9).find('e'), std::string::npos);
  EXPECT_NE(format_double(1.23e-9).find('e'), std::string::npos);
}

TEST(Csv, EscapesFields) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(Errors, RequireThrowsConfigWithContext) {
  try {
    MP_REQUIRE(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

TEST(Errors, AssertThrowsInternal) {
  EXPECT_THROW(MP_ASSERT(1 == 2, "bug"), InternalError);
}

// ---------------------------------------------------------------------------
// Environment-variable parsing: malformed knobs are rejected with a warning
// that names the variable, and the caller falls back to its default.
// ---------------------------------------------------------------------------

/// Captures every warning logged while `fn` runs, with the env var set.
std::vector<std::string> warnings_with_env(const char* name, const char* value,
                                           const std::function<i64()>& fn,
                                           i64* result) {
  std::vector<std::string> warnings;
  set_log_sink([&warnings](LogLevel level, const std::string& msg) {
    if (level == LogLevel::Warn) warnings.push_back(msg);
  });
  EXPECT_EQ(setenv(name, value, 1), 0);
  *result = fn();
  unsetenv(name);
  set_log_sink({});
  return warnings;
}

class EnvKnobs : public ::testing::TestWithParam<const char*> {};

TEST_P(EnvKnobs, MalformedValuesAreRejectedWithAClearMessage) {
  const char* name = GetParam();
  for (const char* bad : {"banana", "12x", "", "-3", "999999999999999999999"}) {
    i64 got = -1;
    const auto warnings = warnings_with_env(
        name, bad, [name] { return env_i64(name, 1, 32767).value_or(-1); },
        &got);
    EXPECT_EQ(got, -1) << name << "='" << bad << "' must fall back";
    if (*bad == '\0') {
      EXPECT_TRUE(warnings.empty());  // unset/empty is not an error
      continue;
    }
    ASSERT_EQ(warnings.size(), 1u) << name << "='" << bad << "'";
    // The message names the variable and echoes the offending value.
    EXPECT_NE(warnings[0].find(name), std::string::npos) << warnings[0];
  }
  // A well-formed value passes through untouched, silently.
  i64 got = -1;
  const auto warnings = warnings_with_env(
      name, "128", [name] { return env_i64(name, 1, 32767).value_or(-1); },
      &got);
  EXPECT_EQ(got, 128);
  EXPECT_TRUE(warnings.empty());
}

INSTANTIATE_TEST_SUITE_P(TuningKnobs, EnvKnobs,
                         ::testing::Values("MESHPRAM_STRIPE_MIN_NODES",
                                           "MESHPRAM_BENCH_MAX_SIDE"));

TEST(Env, StrReturnsNulloptForUnsetOrEmpty) {
  unsetenv("MESHPRAM_TEST_STR");
  EXPECT_FALSE(env_str("MESHPRAM_TEST_STR").has_value());
  ASSERT_EQ(setenv("MESHPRAM_TEST_STR", "", 1), 0);
  EXPECT_FALSE(env_str("MESHPRAM_TEST_STR").has_value());
  ASSERT_EQ(setenv("MESHPRAM_TEST_STR", "hello", 1), 0);
  EXPECT_EQ(env_str("MESHPRAM_TEST_STR").value(), "hello");
  unsetenv("MESHPRAM_TEST_STR");
}

}  // namespace
}  // namespace meshpram
