// Tests for the explicit (q^d, q)-BIBD and the Appendix subgraph.
//
// These validate the combinatorial backbone of the whole simulation:
//  * Definition 1 (degrees, λ = 1),
//  * Lemma 1 (strong expansion),
//  * Theorem 5 (balanced output degrees of the input-subset subgraph),
// exhaustively for a parameter sweep of prime powers q and dimensions d.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "bibd/bibd.hpp"
#include "bibd/subgraph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram {
namespace {

struct QD {
  i64 q;
  int d;
};

std::ostream& operator<<(std::ostream& os, const QD& p) {
  return os << "q" << p.q << "_d" << p.d;
}

class BibdProperties : public ::testing::TestWithParam<QD> {};

TEST_P(BibdProperties, SizesMatchDefinition) {
  const auto [q, d] = GetParam();
  Bibd g(q, d);
  EXPECT_EQ(g.num_outputs(), ipow(q, d));
  EXPECT_EQ(g.num_inputs(), bibd_input_count(q, d));
  EXPECT_EQ(g.input_degree(), q);
  EXPECT_EQ(g.output_degree(), (ipow(q, d) - 1) / (q - 1));
}

TEST_P(BibdProperties, InputEncodingRoundTrips) {
  const auto [q, d] = GetParam();
  Bibd g(q, d);
  for (i64 w = 0; w < g.num_inputs(); ++w) {
    const auto phi = g.decode_input(w);
    EXPECT_EQ(g.encode_input(phi), w);
    EXPECT_GE(phi.h, 0);
    EXPECT_LT(phi.h, d);
    EXPECT_LT(phi.A, ipow(q, d - 1));
    EXPECT_LT(phi.B, ipow(q, phi.h));
  }
}

TEST_P(BibdProperties, InputNeighborsAreDistinctOutputs) {
  const auto [q, d] = GetParam();
  Bibd g(q, d);
  for (i64 w = 0; w < g.num_inputs(); ++w) {
    const auto nb = g.neighbors(w);
    ASSERT_EQ(nb.size(), static_cast<size_t>(q));
    std::set<i64> uniq(nb.begin(), nb.end());
    EXPECT_EQ(uniq.size(), static_cast<size_t>(q))
        << "input " << w << " has repeated neighbors";
    for (i64 u : nb) {
      EXPECT_GE(u, 0);
      EXPECT_LT(u, g.num_outputs());
      EXPECT_TRUE(g.adjacent(w, u));
    }
  }
}

TEST_P(BibdProperties, OutputDegreesUniform) {
  const auto [q, d] = GetParam();
  Bibd g(q, d);
  std::vector<i64> deg(static_cast<size_t>(g.num_outputs()), 0);
  for (i64 w = 0; w < g.num_inputs(); ++w) {
    for (i64 u : g.neighbors(w)) ++deg[static_cast<size_t>(u)];
  }
  for (i64 u = 0; u < g.num_outputs(); ++u) {
    EXPECT_EQ(deg[static_cast<size_t>(u)], g.output_degree());
  }
}

TEST_P(BibdProperties, LambdaIsExactlyOne) {
  const auto [q, d] = GetParam();
  Bibd g(q, d);
  if (g.num_outputs() > 256) GTEST_SKIP() << "quadratic check too large";
  // Count common inputs for every output pair by enumeration.
  std::map<std::pair<i64, i64>, int> common;
  for (i64 w = 0; w < g.num_inputs(); ++w) {
    const auto nb = g.neighbors(w);
    for (size_t i = 0; i < nb.size(); ++i) {
      for (size_t j = i + 1; j < nb.size(); ++j) {
        const auto key = std::minmax(nb[i], nb[j]);
        ++common[{key.first, key.second}];
      }
    }
  }
  for (i64 u1 = 0; u1 < g.num_outputs(); ++u1) {
    for (i64 u2 = u1 + 1; u2 < g.num_outputs(); ++u2) {
      const auto it = common.find({u1, u2});
      ASSERT_NE(it, common.end())
          << "outputs " << u1 << ", " << u2 << " share no input";
      EXPECT_EQ(it->second, 1)
          << "outputs " << u1 << ", " << u2 << " share " << it->second;
    }
  }
}

TEST_P(BibdProperties, CommonInputMatchesEnumeration) {
  const auto [q, d] = GetParam();
  Bibd g(q, d);
  Rng rng(2024);
  const int trials = g.num_outputs() > 512 ? 200 : 50;
  for (int t = 0; t < trials; ++t) {
    const i64 u1 = rng.range(0, g.num_outputs() - 1);
    i64 u2 = rng.range(0, g.num_outputs() - 1);
    if (u1 == u2) continue;
    const i64 w = g.common_input(u1, u2);
    EXPECT_TRUE(g.adjacent(w, u1));
    EXPECT_TRUE(g.adjacent(w, u2));
  }
}

TEST_P(BibdProperties, OutputNeighborEnumerationAndRanks) {
  const auto [q, d] = GetParam();
  Bibd g(q, d);
  Rng rng(7);
  const i64 samples = std::min<i64>(g.num_outputs(), 64);
  for (i64 s = 0; s < samples; ++s) {
    const i64 u = rng.range(0, g.num_outputs() - 1);
    std::set<i64> seen;
    for (i64 r = 0; r < g.output_degree(); ++r) {
      const i64 w = g.output_neighbor(u, r);
      EXPECT_TRUE(g.adjacent(w, u)) << "u=" << u << " r=" << r;
      EXPECT_EQ(g.edge_rank(w, u), r);
      seen.insert(w);
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(g.output_degree()))
        << "duplicate neighbors for output " << u;
  }
}

TEST_P(BibdProperties, StrongExpansionLemma1) {
  const auto [q, d] = GetParam();
  Bibd g(q, d);
  Rng rng(99);
  // For a random output u and a random subset S of its inputs, fix k <= q
  // outgoing edges per input (always including (w, u)): |Γ_k(S)| = (k-1)|S|+1.
  for (int trial = 0; trial < 20; ++trial) {
    const i64 u = rng.range(0, g.num_outputs() - 1);
    const i64 deg = g.output_degree();
    const i64 take = std::min<i64>(deg, 1 + static_cast<i64>(rng.below(8)));
    const auto which = rng.sample(deg, take);
    for (i64 k = 2; k <= q; ++k) {
      std::set<i64> gamma;
      for (i64 r : which) {
        const i64 w = g.output_neighbor(u, r);
        const auto nb = g.neighbors(w);
        // Fix k edges: (w, u) plus the first k-1 other neighbors.
        gamma.insert(u);
        i64 added = 0;
        for (i64 cand : nb) {
          if (cand == u) continue;
          if (added == k - 1) break;
          gamma.insert(cand);
          ++added;
        }
      }
      EXPECT_EQ(static_cast<i64>(gamma.size()), (k - 1) * take + 1)
          << "q=" << q << " d=" << d << " u=" << u << " |S|=" << take
          << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BibdProperties,
    ::testing::Values(QD{2, 2}, QD{2, 3}, QD{2, 4}, QD{3, 1}, QD{3, 2},
                      QD{3, 3}, QD{3, 4}, QD{4, 2}, QD{4, 3}, QD{5, 2},
                      QD{7, 2}, QD{8, 2}, QD{9, 2}),
    [](const ::testing::TestParamInfo<QD>& info) {
      return "q" + std::to_string(info.param.q) + "_d" +
             std::to_string(info.param.d);
    });

TEST(Bibd, RejectsBadParameters) {
  EXPECT_THROW(Bibd(6, 2), ConfigError);   // not a prime power
  EXPECT_THROW(Bibd(3, 0), ConfigError);   // d < 1
  EXPECT_THROW(Bibd(1, 2), ConfigError);   // q < 2
}

TEST(Bibd, DegenerateD1) {
  // (q, q)-BIBD: one input connected to every output.
  Bibd g(5, 1);
  EXPECT_EQ(g.num_inputs(), 1);
  EXPECT_EQ(g.num_outputs(), 5);
  const auto nb = g.neighbors(0);
  std::set<i64> uniq(nb.begin(), nb.end());
  EXPECT_EQ(uniq.size(), 5u);
}

// ---------------------------------------------------------------------------
// Appendix subgraph (Theorem 5).
// ---------------------------------------------------------------------------

struct SubParam {
  i64 q;
  int d;
  i64 m;
};

class SubgraphProperties : public ::testing::TestWithParam<QD> {};

TEST_P(SubgraphProperties, Theorem5HoldsForEveryM) {
  const auto [q, d] = GetParam();
  const i64 f = bibd_input_count(q, d);
  const i64 qd = ipow(q, d);
  // Sweep all m for small designs, a spread of m for larger ones.
  std::vector<i64> ms;
  if (f <= 200) {
    for (i64 m = 1; m <= f; ++m) ms.push_back(m);
  } else {
    Rng rng(5);
    ms = {1, 2, qd - 1, qd, qd + 1, f / 3, f / 2, f - 1, f};
    for (int t = 0; t < 20; ++t) ms.push_back(1 + rng.range(0, f - 1));
  }
  for (i64 m : ms) {
    BibdSubgraph g(q, d, m);
    // Recompute all output degrees by brute force.
    std::vector<i64> deg(static_cast<size_t>(qd), 0);
    for (i64 v = 0; v < m; ++v) {
      const auto nb = g.neighbors(v);
      std::set<i64> uniq(nb.begin(), nb.end());
      ASSERT_EQ(uniq.size(), static_cast<size_t>(q));
      for (i64 u : nb) ++deg[static_cast<size_t>(u)];
    }
    const i64 lo = (q * m) / qd;
    const i64 hi = ceil_div(q * m, qd);
    for (i64 u = 0; u < qd; ++u) {
      EXPECT_GE(deg[static_cast<size_t>(u)], lo) << "m=" << m << " u=" << u;
      EXPECT_LE(deg[static_cast<size_t>(u)], hi) << "m=" << m << " u=" << u;
      EXPECT_EQ(deg[static_cast<size_t>(u)], g.output_degree(u))
          << "m=" << m << " u=" << u;
    }
  }
}

TEST_P(SubgraphProperties, NeighborRankRoundTrip) {
  const auto [q, d] = GetParam();
  const i64 f = bibd_input_count(q, d);
  Rng rng(13);
  for (i64 m : {f / 4 + 1, f / 2 + 1, f}) {
    if (m < 1) continue;
    BibdSubgraph g(q, d, m);
    const i64 samples = std::min<i64>(g.num_outputs(), 32);
    for (i64 s = 0; s < samples; ++s) {
      const i64 u = rng.range(0, g.num_outputs() - 1);
      std::set<i64> seen;
      for (i64 r = 0; r < g.output_degree(u); ++r) {
        const i64 v = g.output_neighbor(u, r);
        EXPECT_LT(v, m);
        EXPECT_TRUE(g.adjacent(v, u));
        EXPECT_EQ(g.edge_rank(v, u), r) << "m=" << m << " u=" << u;
        seen.insert(v);
      }
      EXPECT_EQ(static_cast<i64>(seen.size()), g.output_degree(u));
    }
  }
}

TEST_P(SubgraphProperties, DecompositionIdentity) {
  const auto [q, d] = GetParam();
  const i64 f = bibd_input_count(q, d);
  Rng rng(77);
  for (int t = 0; t < 30; ++t) {
    const i64 m = 1 + rng.range(0, f - 1);
    BibdSubgraph g(q, d, m);
    // m = q^{d-1}((q^l - 1)/(q-1) + w) + z  (Appendix eq. 11)
    const i64 qd1 = ipow(q, d - 1);
    EXPECT_EQ(qd1 * ((ipow(q, g.l()) - 1) / (q - 1) + g.w()) + g.z(), m);
    if (g.l() < d) EXPECT_LT(g.w(), ipow(q, g.l()));
    EXPECT_LT(g.z(), qd1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SubgraphProperties,
    ::testing::Values(QD{2, 2}, QD{2, 3}, QD{3, 2}, QD{3, 3}, QD{4, 2},
                      QD{5, 2}, QD{9, 2}),
    [](const ::testing::TestParamInfo<QD>& info) {
      return "q" + std::to_string(info.param.q) + "_d" +
             std::to_string(info.param.d);
    });

TEST(Subgraph, RejectsBadM) {
  EXPECT_THROW(BibdSubgraph(3, 2, 0), ConfigError);
  EXPECT_THROW(BibdSubgraph(3, 2, bibd_input_count(3, 2) + 1), ConfigError);
}

TEST(Subgraph, FullMEqualsWholeDesign) {
  const i64 f = bibd_input_count(3, 3);
  BibdSubgraph g(3, 3, f);
  EXPECT_EQ(g.l(), 3);
  EXPECT_EQ(g.w(), 0);
  EXPECT_EQ(g.z(), 0);
  EXPECT_EQ(g.min_output_degree(), g.max_output_degree());
  EXPECT_EQ(g.min_output_degree(), g.full().output_degree());
}

}  // namespace
}  // namespace meshpram
