// Tests for the PRAM frontend (backends, programs, classic algorithms) and
// the baseline schemes (single copy, direct-all-copies, MPC contention).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "algo/staples.hpp"
#include "pram/backend.hpp"
#include "pram/baselines/direct.hpp"
#include "pram/baselines/mpc.hpp"
#include "pram/baselines/single_copy.hpp"
#include "pram/mesh_backend.hpp"
#include "pram/program.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram {
namespace {

SimConfig tiny_config() {
  SimConfig cfg;
  cfg.mesh_rows = 8;
  cfg.mesh_cols = 8;
  cfg.num_vars = 1080;
  return cfg;
}

TEST(IdealBackend, ReadsSeePreviousStepAndWritesLand) {
  IdealBackend b(4, 100);
  b.step({{0, Op::Write, 5}, {1, Op::Write, 6}});
  const auto r = b.step({{0, Op::Read, 0}, {1, Op::Read, 0}, {2, Op::Read, 0}});
  EXPECT_EQ(r[0], 5);
  EXPECT_EQ(r[1], 6);
  EXPECT_EQ(r[2], 0);
  EXPECT_EQ(b.pram_steps(), 2);
  EXPECT_EQ(b.total_mesh_steps(), 0);
}

TEST(IdealBackend, ReadAndWriteOfSameVarInOneStepIsErewViolation) {
  IdealBackend b(4, 100);
  EXPECT_THROW(b.step({{7, Op::Write, 1}, {7, Op::Read, 0}}), ConfigError);
}

TEST(IdealBackend, RejectsBadInputs) {
  IdealBackend b(2, 10);
  EXPECT_THROW(b.step({{0, Op::Read, 0}, {1, Op::Read, 0}, {2, Op::Read, 0}}),
               ConfigError);
  EXPECT_THROW(b.step({{10, Op::Read, 0}}), ConfigError);
  EXPECT_THROW(IdealBackend(0, 10), ConfigError);
}

// ---------------------------------------------------------------------------
// Programs on both backends.
// ---------------------------------------------------------------------------

TEST(PrefixSum, MatchesReferenceOnIdealBackend) {
  Rng rng(1);
  for (i64 n : {1, 2, 3, 7, 16, 40, 64}) {
    std::vector<i64> input(static_cast<size_t>(n));
    for (auto& x : input) x = rng.range(-50, 50);
    IdealBackend backend(n, 2 * n + 4);
    PrefixSumProgram prog(input);
    run_program(prog, backend);
    EXPECT_EQ(prog.result(), PrefixSumProgram::expected(input)) << "n=" << n;
  }
}

TEST(PrefixSum, MeshBackendMatchesIdealExactly) {
  Rng rng(2);
  std::vector<i64> input(64);
  for (auto& x : input) x = rng.range(0, 1000);

  IdealBackend ideal(64, 1080);
  PrefixSumProgram p1(input);
  const i64 steps1 = run_program(p1, ideal);

  MeshBackend mesh(tiny_config());
  PrefixSumProgram p2(input);
  const i64 steps2 = run_program(p2, mesh);

  EXPECT_EQ(p1.result(), p2.result());
  EXPECT_EQ(steps1, steps2);  // same program schedule
  EXPECT_GT(mesh.total_mesh_steps(), 0);
  EXPECT_EQ(mesh.pram_steps(), steps2);
}

TEST(ListRanking, MatchesReferenceOnIdealBackend) {
  Rng rng(3);
  for (i64 n : {1, 2, 5, 16, 33}) {
    // Random list: permute nodes into a chain.
    std::vector<i64> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    std::vector<i64> succ(static_cast<size_t>(n), -1);
    for (i64 i = 0; i + 1 < n; ++i) {
      succ[static_cast<size_t>(order[static_cast<size_t>(i)])] =
          order[static_cast<size_t>(i + 1)];
    }
    IdealBackend backend(n, 2 * n + 4);
    ListRankingProgram prog(succ);
    run_program(prog, backend);
    EXPECT_EQ(prog.ranks(), ListRankingProgram::expected(succ)) << "n=" << n;
  }
}

TEST(ListRanking, MeshBackendMatchesIdeal) {
  Rng rng(4);
  const i64 n = 48;
  std::vector<i64> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<i64> succ(static_cast<size_t>(n), -1);
  for (i64 i = 0; i + 1 < n; ++i) {
    succ[static_cast<size_t>(order[static_cast<size_t>(i)])] =
        order[static_cast<size_t>(i + 1)];
  }
  IdealBackend ideal(64, 1080);
  ListRankingProgram p1(succ);
  run_program(p1, ideal);
  MeshBackend mesh(tiny_config());
  ListRankingProgram p2(succ);
  run_program(p2, mesh);
  EXPECT_EQ(p1.ranks(), p2.ranks());
  EXPECT_EQ(p1.ranks(), ListRankingProgram::expected(succ));
}

TEST(Programs, RejectTooManyProcessors) {
  IdealBackend small(4, 100);
  PrefixSumProgram prog(std::vector<i64>(10, 1));
  EXPECT_THROW(run_program(prog, small), ConfigError);
}

// ---------------------------------------------------------------------------
// run_program edge cases: degenerate programs must terminate cleanly and
// charge exactly the steps they executed.
// ---------------------------------------------------------------------------

namespace {

/// Configurable toy program: `idle_rounds` supersteps where every processor
/// plans var = -1, then one superstep writing proc -> var proc, then done.
class IdleThenWriteProgram : public PramProgram {
 public:
  IdleThenWriteProgram(i64 procs, i64 idle_rounds)
      : procs_(procs), idle_(idle_rounds) {}

  i64 processors() const override { return procs_; }
  bool done(i64 step) const override { return step > idle_; }
  AccessRequest plan(i64 proc, i64 step) override {
    if (step < idle_) return {};  // var = -1: everyone idles
    return {proc, Op::Write, proc * 10};
  }
  void receive(i64, i64, i64) override {}

 private:
  i64 procs_;
  i64 idle_;
};

/// done(0) == true: the driver must execute nothing at all.
class EmptyProgram : public PramProgram {
 public:
  explicit EmptyProgram(i64 procs) : procs_(procs) {}
  i64 processors() const override { return procs_; }
  bool done(i64) const override { return true; }
  AccessRequest plan(i64, i64) override { return {}; }
  void receive(i64, i64, i64) override {}

 private:
  i64 procs_;
};

}  // namespace

TEST(RunProgram, DoneAtStepZeroExecutesNothing) {
  IdealBackend backend(4, 16);
  EmptyProgram prog(4);
  EXPECT_EQ(run_program(prog, backend), 0);
  EXPECT_EQ(backend.pram_steps(), 0);
}

TEST(RunProgram, ZeroProcessorProgramTerminates) {
  // A program may declare zero processors (an empty problem slice); the
  // driver plans nobody and still honours done().
  IdealBackend backend(4, 16);
  EmptyProgram prog(0);
  EXPECT_EQ(run_program(prog, backend), 0);
}

TEST(RunProgram, AllIdleRoundsAreChargedAsSteps) {
  IdealBackend backend(8, 100);
  IdleThenWriteProgram prog(8, 3);
  EXPECT_EQ(run_program(prog, backend), 4);  // 3 idle + 1 write
  EXPECT_EQ(backend.pram_steps(), 4);
  const auto r = backend.step({{0, Op::Read, 0}, {7, Op::Read, 0}});
  EXPECT_EQ(r[0], 0);
  EXPECT_EQ(r[1], 70);
}

TEST(RunProgram, MeshBackendMatchesIdealOnIdleHeavyPrograms) {
  IdealBackend ideal(64, 1080);
  IdleThenWriteProgram p1(64, 5);
  const i64 s1 = run_program(p1, ideal);
  MeshBackend mesh(tiny_config());
  IdleThenWriteProgram p2(64, 5);
  const i64 s2 = run_program(p2, mesh);
  EXPECT_EQ(s1, s2);
  std::vector<AccessRequest> reads(64);
  for (i64 i = 0; i < 64; ++i) reads[static_cast<size_t>(i)] = {i, Op::Read, 0};
  EXPECT_EQ(ideal.step(reads), mesh.step(reads));
}

// ---------------------------------------------------------------------------
// Baselines.
// ---------------------------------------------------------------------------

TEST(SingleCopy, RoundTripAndConsistency) {
  for (auto placement :
       {SingleCopyPlacement::Modular, SingleCopyPlacement::Hashed}) {
    SingleCopySim sim(8, 8, 1024, placement);
    std::vector<AccessRequest> writes(64), reads(64);
    for (i64 i = 0; i < 64; ++i) {
      writes[static_cast<size_t>(i)] = {i * 13 % 1024, Op::Write, 7 * i};
      reads[static_cast<size_t>(i)] = {i * 13 % 1024, Op::Read, 0};
    }
    sim.step(writes);
    SingleCopyStats st;
    const auto got = sim.step(reads, &st);
    for (i64 i = 0; i < 64; ++i) {
      EXPECT_EQ(got[static_cast<size_t>(i)], 7 * i);
    }
    EXPECT_GT(st.total_steps, 0);
    EXPECT_GE(st.service_steps, 1);
  }
}

TEST(SingleCopy, AdversarialModularPatternSerializes) {
  SingleCopySim sim(8, 8, 4096, SingleCopyPlacement::Modular);
  // All 64 processors request variables congruent mod 64: one home node.
  std::vector<AccessRequest> reqs(64);
  for (i64 i = 0; i < 64; ++i) {
    reqs[static_cast<size_t>(i)] = {5 + 64 * i, Op::Read, 0};
  }
  SingleCopyStats st;
  sim.step(reqs, &st);
  EXPECT_EQ(st.service_steps, 64);  // full serialization at the hot module
}

TEST(SingleCopy, AdversaryBeatsHashedPlacementToo) {
  // The adversary knows the hash: pick 64 variables with the same home.
  SingleCopySim sim(8, 8, 1 << 16, SingleCopyPlacement::Hashed, 99);
  std::vector<AccessRequest> reqs;
  const i32 target = sim.home(0);
  for (i64 v = 0; v < (1 << 16) && reqs.size() < 64; ++v) {
    if (sim.home(v) == target) reqs.push_back({v, Op::Read, 0});
  }
  ASSERT_EQ(reqs.size(), 64u) << "not enough colliding variables";
  SingleCopyStats st;
  reqs.resize(64);
  sim.step(reqs, &st);
  EXPECT_EQ(st.service_steps, 64);
}

TEST(SingleCopy, HashedSpreadsRandomLoad) {
  SingleCopySim sim(8, 8, 1 << 16, SingleCopyPlacement::Hashed);
  Rng rng(5);
  std::vector<AccessRequest> reqs(64);
  std::set<i64> used;
  for (i64 i = 0; i < 64; ++i) {
    i64 v = rng.range(0, (1 << 16) - 1);
    while (used.contains(v)) v = (v + 1) % (1 << 16);
    used.insert(v);
    reqs[static_cast<size_t>(i)] = {v, Op::Read, 0};
  }
  SingleCopyStats st;
  sim.step(reqs, &st);
  EXPECT_LE(st.service_steps, 8);  // random balls-in-bins stays tiny
}

TEST(DirectAllCopies, ConsistentButCongestible) {
  DirectAllCopiesSim sim(tiny_config());
  std::vector<AccessRequest> writes(64), reads(64);
  for (i64 i = 0; i < 64; ++i) {
    writes[static_cast<size_t>(i)] = {i, Op::Write, i * i};
    reads[static_cast<size_t>(i)] = {i, Op::Read, 0};
  }
  DirectStats ws, rs;
  sim.step(writes, &ws);
  const auto got = sim.step(reads, &rs);
  for (i64 i = 0; i < 64; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], i * i);
  }
  EXPECT_GT(ws.total_steps, 0);
  EXPECT_GE(rs.service_steps, 1);
}

TEST(Mpc, SingleCopyAdversaryVsMajorityQuorums) {
  // m = 81 modules host up to f(4) = 1080 variables ([PP93a] capacity).
  const i64 m = 81;
  MpcSim mpc(3, m, 1080);
  // Adversarial single-copy pattern: every variable of module 7.
  std::vector<i64> adversarial;
  for (i64 v = 7; v < 1080; v += m) adversarial.push_back(v);
  const i64 hot = static_cast<i64>(adversarial.size());  // 14
  EXPECT_EQ(mpc.single_copy_contention(adversarial), hot);
  // Majority quorums with copy choice spread the same pattern out.
  const i64 maj = mpc.majority_contention(adversarial);
  EXPECT_LT(maj, hot / 2);
  EXPECT_GE(maj, 1);
}

TEST(Mpc, RejectsNonPowerModuleCount) {
  EXPECT_THROW(MpcSim(3, 80, 1000), ConfigError);
}

TEST(Mpc, ContentionNeverBelowAverage) {
  MpcSim mpc(3, 27, 117);  // f(3) = 117
  Rng rng(6);
  std::vector<i64> vars;
  std::set<i64> used;
  for (int i = 0; i < 100; ++i) {
    i64 v = rng.range(0, 116);
    while (used.contains(v)) v = (v + 1) % 117;
    used.insert(v);
    vars.push_back(v);
  }
  EXPECT_GE(mpc.single_copy_contention(vars), ceil_div(100, 27));
  EXPECT_GE(mpc.majority_contention(vars), ceil_div(2 * 100, 27));
}

TEST(Mpc, RejectsOverCapacity) {
  EXPECT_THROW(MpcSim(3, 81, 10000), ConfigError);  // > f(4) = 1080
}

}  // namespace
}  // namespace meshpram
