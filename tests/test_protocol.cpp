// Tests for copy selection (target sets + CULLING) and the end-to-end access
// protocol: Theorem 3's congestion bound, the quorum-intersection consistency
// argument, and full write/read correctness against a flat reference memory.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "protocol/culling.hpp"
#include "protocol/simulator.hpp"
#include "protocol/target_set.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram {
namespace {

// ---------------------------------------------------------------------------
// Target sets.
// ---------------------------------------------------------------------------

struct QK {
  i64 q;
  int k;
};

class TargetSweep : public ::testing::TestWithParam<QK> {};

TEST_P(TargetSweep, MinimalSizesMatchFormula) {
  const auto [q, k] = GetParam();
  TargetSelector sel(q, k);
  const i64 maj = q / 2 + 1;
  const i64 ext = q / 2 + 2;
  for (int level = 0; level <= k; ++level) {
    const auto codes = sel.initial(level);
    // (maj)^level * (ext)^{k-level} leaves.
    EXPECT_EQ(static_cast<i64>(codes.size()),
              ipow(maj, level) * ipow(ext, k - level))
        << "q=" << q << " k=" << k << " level=" << level;
    std::vector<char> bits(static_cast<size_t>(sel.num_codes()), 0);
    for (i64 c : codes) bits[static_cast<size_t>(c)] = 1;
    EXPECT_TRUE(sel.is_level_target_set(bits, level));
    EXPECT_TRUE(sel.is_target_set(bits));  // level-i targets contain targets
  }
}

TEST_P(TargetSweep, AnyTwoTargetSetsIntersect) {
  // The quorum property behind read/write consistency: random minimal target
  // sets (selected under random marked preferences) always share a leaf.
  const auto [q, k] = GetParam();
  TargetSelector sel(q, k);
  Rng rng(static_cast<u64>(q * 100 + k));
  std::vector<std::vector<i64>> sets;
  const std::vector<char> all(static_cast<size_t>(sel.num_codes()), 1);
  for (int t = 0; t < 24; ++t) {
    std::vector<char> marked(static_cast<size_t>(sel.num_codes()), 0);
    for (i64 c = 0; c < sel.num_codes(); ++c) {
      marked[static_cast<size_t>(c)] = static_cast<char>(rng.below(2));
    }
    const auto s = sel.select(k, all, marked);  // ordinary target set
    ASSERT_TRUE(s.feasible);
    sets.push_back(s.codes);
  }
  for (size_t i = 0; i < sets.size(); ++i) {
    for (size_t j = i + 1; j < sets.size(); ++j) {
      EXPECT_TRUE(TargetSelector::intersects(sets[i], sets[j]))
          << "q=" << q << " k=" << k;
    }
  }
}

TEST_P(TargetSweep, SelectionRespectsCandidatesAndPrefersMarked) {
  const auto [q, k] = GetParam();
  TargetSelector sel(q, k);
  Rng rng(77);
  for (int t = 0; t < 30; ++t) {
    std::vector<char> cand(static_cast<size_t>(sel.num_codes()), 0);
    std::vector<char> marked(static_cast<size_t>(sel.num_codes()), 0);
    for (i64 c = 0; c < sel.num_codes(); ++c) {
      cand[static_cast<size_t>(c)] = static_cast<char>(rng.below(10) < 8);
      marked[static_cast<size_t>(c)] =
          static_cast<char>(cand[static_cast<size_t>(c)] && rng.below(2));
    }
    const int level = static_cast<int>(rng.below(static_cast<u64>(k + 1)));
    const auto s = sel.select(level, cand, marked);
    if (!s.feasible) continue;
    i64 unmarked = 0;
    for (i64 c : s.codes) {
      EXPECT_TRUE(cand[static_cast<size_t>(c)]) << "chose non-candidate";
      if (!marked[static_cast<size_t>(c)]) ++unmarked;
    }
    EXPECT_EQ(unmarked, s.unmarked);
    std::vector<char> bits(static_cast<size_t>(sel.num_codes()), 0);
    for (i64 c : s.codes) bits[static_cast<size_t>(c)] = 1;
    EXPECT_TRUE(sel.is_level_target_set(bits, level));
    // Preference sanity: selecting with everything marked costs 0.
    const auto s2 = sel.select(level, cand, cand);
    if (s2.feasible) EXPECT_EQ(s2.unmarked, 0);
  }
}

TEST_P(TargetSweep, InfeasibleWhenTooFewCopies) {
  const auto [q, k] = GetParam();
  TargetSelector sel(q, k);
  const std::vector<char> none(static_cast<size_t>(sel.num_codes()), 0);
  EXPECT_FALSE(sel.select(k, none, none).feasible);
  // A single leaf cannot be a target set for k >= 1.
  std::vector<char> one(static_cast<size_t>(sel.num_codes()), 0);
  one[0] = 1;
  EXPECT_FALSE(sel.is_target_set(one));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TargetSweep,
                         ::testing::Values(QK{3, 1}, QK{3, 2}, QK{3, 3},
                                           QK{3, 4}, QK{4, 2}, QK{5, 2},
                                           QK{5, 3}, QK{7, 2}, QK{9, 2}),
                         [](const ::testing::TestParamInfo<QK>& info) {
                           return "q" + std::to_string(info.param.q) + "_k" +
                                  std::to_string(info.param.k);
                         });

TEST(TargetSelector, RejectsBadParameters) {
  EXPECT_THROW(TargetSelector(2, 2), ConfigError);
  EXPECT_THROW(TargetSelector(3, 0), ConfigError);
  TargetSelector sel(3, 2);
  EXPECT_THROW(sel.select(3, std::vector<char>(9, 1), std::vector<char>(9, 1)),
               ConfigError);
  EXPECT_THROW(sel.select(0, std::vector<char>(4, 1), std::vector<char>(4, 1)),
               ConfigError);
}

TEST(TargetSelector, MajorityIntersectionIsTightForQ3) {
  // For q=3, k=2: minimal target sets have 4 of 9 leaves, and two disjoint
  // 4-subsets of 9 exist — but not two disjoint TARGET sets.
  TargetSelector sel(3, 2);
  const auto a = sel.initial(2);
  EXPECT_EQ(a.size(), 4u);
}

// ---------------------------------------------------------------------------
// CULLING (Theorem 3).
// ---------------------------------------------------------------------------

struct SimFixtureConfig {
  int rows;
  int cols;
  i64 vars;
  int k;
};

class CullingTest : public ::testing::TestWithParam<SimFixtureConfig> {};

TEST_P(CullingTest, Theorem3BoundHolds) {
  const auto [rows, cols, vars, k] = GetParam();
  HmosParams params(3, k, vars, rows, cols);
  MemoryMap map(params);
  Mesh mesh(rows, cols);
  Placement placement(map, mesh.whole());
  Culling culling(mesh, placement);

  Rng rng(2025);
  // Adversarial-ish request set: a mix of consecutive variables (which share
  // BIBD structure) and random ones.
  std::vector<i64> reqs(static_cast<size_t>(mesh.size()), -1);
  for (i64 node = 0; node < mesh.size(); ++node) {
    reqs[static_cast<size_t>(node)] =
        (node % 2 == 0) ? node % params.num_vars()
                        : rng.range(0, params.num_vars() - 1);
  }
  // EREW de-dup.
  std::set<i64> used;
  for (auto& v : reqs) {
    while (used.contains(v)) v = (v + 1) % params.num_vars();
    used.insert(v);
  }

  CullingStats stats;
  const auto selections = culling.run(reqs, &stats);

  ASSERT_EQ(static_cast<int>(stats.max_page_load.size()), k);
  for (int i = 1; i <= k; ++i) {
    EXPECT_LE(stats.max_page_load[static_cast<size_t>(i - 1)],
              stats.bound[static_cast<size_t>(i - 1)])
        << "Theorem 3 violated at level " << i;
  }

  // Every selection is a minimal target set of its variable, contained in
  // the full code set.
  TargetSelector sel(3, k);
  const i64 expect_size = ipow(2, k);
  for (i64 node = 0; node < mesh.size(); ++node) {
    const auto& codes = selections[static_cast<size_t>(node)];
    ASSERT_EQ(static_cast<i64>(codes.size()), expect_size) << "node " << node;
    std::vector<char> bits(static_cast<size_t>(sel.num_codes()), 0);
    for (i64 c : codes) bits[static_cast<size_t>(c)] = 1;
    EXPECT_TRUE(sel.is_target_set(bits));
  }
  EXPECT_GT(stats.steps, 0);
  EXPECT_EQ(stats.selected_copies, mesh.size() * expect_size);
}

INSTANTIATE_TEST_SUITE_P(
    Meshes, CullingTest,
    ::testing::Values(SimFixtureConfig{8, 8, 1080, 2},
                      SimFixtureConfig{8, 8, 64, 1},
                      SimFixtureConfig{16, 16, 1080, 2},
                      SimFixtureConfig{32, 32, 4096, 2}),
    [](const ::testing::TestParamInfo<SimFixtureConfig>& info) {
      return std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols) + "_M" +
             std::to_string(info.param.vars) + "_k" +
             std::to_string(info.param.k);
    });

TEST(Culling, IdleProcessorsAreSkipped) {
  HmosParams params(3, 2, 1080, 8, 8);
  MemoryMap map(params);
  Mesh mesh(8, 8);
  Placement placement(map, mesh.whole());
  Culling culling(mesh, placement);
  std::vector<i64> reqs(64, -1);
  reqs[5] = 42;
  CullingStats stats;
  const auto selections = culling.run(reqs, &stats);
  for (i64 node = 0; node < 64; ++node) {
    if (node == 5) {
      EXPECT_EQ(selections[static_cast<size_t>(node)].size(), 4u);
    } else {
      EXPECT_TRUE(selections[static_cast<size_t>(node)].empty());
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end access protocol.
// ---------------------------------------------------------------------------

SimConfig small_config() {
  SimConfig cfg;
  cfg.mesh_rows = 8;
  cfg.mesh_cols = 8;
  cfg.num_vars = 1080;
  cfg.q = 3;
  cfg.k = 2;
  return cfg;
}

TEST(Access, WriteThenReadRoundTrip) {
  PramMeshSimulator sim(small_config());
  const i64 n = sim.processors();
  std::vector<i64> vars(static_cast<size_t>(n));
  std::vector<i64> vals(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    vars[static_cast<size_t>(i)] = i * 7 % sim.num_vars();
    vals[static_cast<size_t>(i)] = 1000 + i;
  }
  // Ensure distinct vars (7 and 1080 are coprime over 64 values: fine).
  StepStats ws, rs;
  sim.write_step(vars, vals, &ws);
  const auto got = sim.read_step(vars, &rs);
  for (i64 i = 0; i < n; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], vals[static_cast<size_t>(i)])
        << "var " << vars[static_cast<size_t>(i)];
  }
  EXPECT_GT(ws.total_steps, 0);
  EXPECT_GT(rs.total_steps, 0);
  EXPECT_EQ(static_cast<int>(ws.forward_stage_steps.size()), 3);  // k+1 stages
}

TEST(Access, ReadersSeeLatestOfInterleavedWrites) {
  PramMeshSimulator sim(small_config());
  const i64 n = sim.processors();
  Rng rng(4242);
  std::unordered_map<i64, i64> reference;

  for (int step = 0; step < 8; ++step) {
    // Random mix of reads and writes over distinct variables.
    std::vector<AccessRequest> reqs(static_cast<size_t>(n));
    std::set<i64> used;
    for (i64 i = 0; i < n; ++i) {
      i64 v = rng.range(0, sim.num_vars() - 1);
      while (used.contains(v)) v = (v + 1) % sim.num_vars();
      used.insert(v);
      const bool write = rng.below(2) == 0;
      reqs[static_cast<size_t>(i)] =
          AccessRequest{v, write ? Op::Write : Op::Read,
                        write ? rng.range(1, 1 << 20) : 0};
    }
    const auto results = sim.step(reqs);
    for (i64 i = 0; i < n; ++i) {
      const auto& r = reqs[static_cast<size_t>(i)];
      if (r.op == Op::Read) {
        const auto it = reference.find(r.var);
        const i64 expect = it == reference.end() ? 0 : it->second;
        EXPECT_EQ(results[static_cast<size_t>(i)], expect)
            << "step " << step << " var " << r.var;
      }
    }
    for (i64 i = 0; i < n; ++i) {
      const auto& r = reqs[static_cast<size_t>(i)];
      if (r.op == Op::Write) reference[r.var] = r.value;
    }
  }
}

TEST(Access, OverwriteReturnsNewestValue) {
  PramMeshSimulator sim(small_config());
  for (i64 round = 1; round <= 5; ++round) {
    sim.write_step({17}, {round * 11});
    const auto got = sim.read_step({17});
    EXPECT_EQ(got[0], round * 11);
  }
}

TEST(Access, UnwrittenVariablesReadZero) {
  PramMeshSimulator sim(small_config());
  const auto got = sim.read_step({3, 99, 1000});
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[1], 0);
  EXPECT_EQ(got[2], 0);
}

TEST(Access, RejectsErewViolation) {
  PramMeshSimulator sim(small_config());
  std::vector<AccessRequest> reqs(static_cast<size_t>(sim.processors()));
  reqs[0] = AccessRequest{5, Op::Read, 0};
  reqs[1] = AccessRequest{5, Op::Read, 0};
  EXPECT_THROW(sim.step(reqs), ConfigError);
}

TEST(Access, RejectsTooManyRequests) {
  PramMeshSimulator sim(small_config());
  std::vector<AccessRequest> reqs(static_cast<size_t>(sim.processors()) + 1);
  EXPECT_THROW(sim.step(reqs), ConfigError);
}

TEST(Access, NonDegradedMediumMesh) {
  SimConfig cfg;
  cfg.mesh_rows = 32;
  cfg.mesh_cols = 32;
  cfg.num_vars = 4096;
  PramMeshSimulator sim(cfg);
  EXPECT_FALSE(sim.placement().degraded());
  const i64 n = sim.processors();
  std::vector<i64> vars(static_cast<size_t>(n));
  std::vector<i64> vals(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    vars[static_cast<size_t>(i)] = (i * 3 + 1) % 4096;
    vals[static_cast<size_t>(i)] = i ^ 0x5a5a;
  }
  StepStats ws;
  sim.write_step(vars, vals, &ws);
  const auto got = sim.read_step(vars);
  for (i64 i = 0; i < n; ++i) {
    ASSERT_EQ(got[static_cast<size_t>(i)], vals[static_cast<size_t>(i)]);
  }
  // Theorem 3 held during culling.
  for (size_t i = 0; i < ws.culling.max_page_load.size(); ++i) {
    EXPECT_LE(ws.culling.max_page_load[i], ws.culling.bound[i]);
  }
}

TEST(Access, AnalyticSortModeGivesSameResults) {
  SimConfig cfg = small_config();
  cfg.sort_mode = SortMode::Analytic;
  PramMeshSimulator sim(cfg);
  sim.write_step({1, 2, 3}, {10, 20, 30});
  const auto got = sim.read_step({3, 2, 1});
  EXPECT_EQ(got[0], 30);
  EXPECT_EQ(got[1], 20);
  EXPECT_EQ(got[2], 10);
}

TEST(Access, StatsAreInternallyConsistent) {
  PramMeshSimulator sim(small_config());
  StepStats st;
  sim.write_step({1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}, &st);
  EXPECT_EQ(st.total_steps,
            st.culling_steps + st.forward_steps + st.return_steps);
  i64 fwd = 0;
  for (i64 s : st.forward_stage_steps) fwd += s;
  EXPECT_EQ(fwd, st.forward_steps);
  EXPECT_EQ(st.packets, 5 * 4);  // 5 requests, 2^k = 4 copies each
}

}  // namespace
}  // namespace meshpram
