// Telemetry subsystem (DESIGN.md §8): observer-effect invariance (tracing
// must not change counted steps or PRAM-visible results at any thread count),
// exporter round-trips, ring-buffer wrap accounting and sampling control.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mesh/parallel.hpp"
#include "protocol/simulator.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_load.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {
namespace {

struct WorkloadResult {
  std::vector<i64> reads;
  StepStats write_stats;
  StepStats read_stats;
  std::unique_ptr<PramMeshSimulator> sim;
};

/// Fixed two-step PRAM workload (write everything, read it back) — the same
/// instance as tests/test_parallel_engine.cpp, so results are comparable.
WorkloadResult run_workload(int threads) {
  set_execution_threads(threads);
  set_log_level(LogLevel::Error);
  SimConfig cfg;
  cfg.mesh_rows = 16;
  cfg.mesh_cols = 16;
  cfg.num_vars = 1080;
  cfg.q = 3;
  cfg.k = 2;
  cfg.sort_mode = SortMode::Simulated;
  WorkloadResult r;
  r.sim = std::make_unique<PramMeshSimulator>(cfg);
  const i64 n = r.sim->processors();

  Rng rng(2024);
  std::vector<i64> vars(static_cast<size_t>(n));
  std::vector<i64> values(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    vars[static_cast<size_t>(i)] = (i * 7 + 3) % cfg.num_vars;
    values[static_cast<size_t>(i)] = rng.range(0, 1 << 20);
  }
  r.sim->write_step(vars, values, &r.write_stats);
  r.reads = r.sim->read_step(vars, &r.read_stats);
  return r;
}

void expect_same_observables(const WorkloadResult& a, const WorkloadResult& b,
                             const std::string& what) {
  EXPECT_EQ(a.reads, b.reads) << "read results differ: " << what;
  EXPECT_EQ(a.read_stats.total_steps, b.read_stats.total_steps) << what;
  EXPECT_EQ(a.read_stats.culling_steps, b.read_stats.culling_steps) << what;
  EXPECT_EQ(a.read_stats.forward_steps, b.read_stats.forward_steps) << what;
  EXPECT_EQ(a.read_stats.return_steps, b.read_stats.return_steps) << what;
  EXPECT_EQ(a.read_stats.packets, b.read_stats.packets) << what;
  EXPECT_EQ(a.read_stats.forward_stage_steps, b.read_stats.forward_stage_steps)
      << what;
  EXPECT_EQ(a.write_stats.total_steps, b.write_stats.total_steps) << what;
  EXPECT_EQ(a.read_stats.culling.selected_copies,
            b.read_stats.culling.selected_copies)
      << what;
}

/// Telemetry only observes: with tracing enabled, every counted step and
/// PRAM-visible result is bit-identical to the untraced run, at 1, 2 and
/// hardware_concurrency threads. (In MESHPRAM_TELEMETRY=OFF builds this
/// degenerates to a repeat of the parallel-engine determinism check.)
TEST(Telemetry, ObserverEffectInvariance) {
  telemetry::set_enabled(false);
  const WorkloadResult base = run_workload(1);

  const int hw =
      static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
  for (const int threads : {1, 2, hw}) {
    telemetry::clear();
    telemetry::set_enabled(true);
    telemetry::set_sample_every(1);
    const WorkloadResult traced = run_workload(threads);
    telemetry::set_enabled(false);
    expect_same_observables(base, traced,
                            "telemetry on, " + std::to_string(threads) +
                                " threads");
  }
  set_execution_threads(0);  // restore the environment default
}

/// Exporters emit well-formed output even when nothing was recorded — in
/// particular in MESHPRAM_TELEMETRY=OFF builds, where this is the only
/// exporter path that exists.
TEST(Telemetry, EmptyTraceExportsAreWellFormed) {
  telemetry::set_enabled(false);
  telemetry::clear();
  std::stringstream ss;
  telemetry::write_chrome_trace(ss);
  const telemetry::LoadedTrace trace = telemetry::load_chrome_trace(ss);
  EXPECT_TRUE(trace.events.empty());

  telemetry::MeshCounters counters;
  counters.resize(2, 2);
  std::stringstream csv;
  telemetry::write_heatmap_csv(counters, csv);
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header,
            "node,row,col,max_queue,forwarded,copies_touched,survivors,"
            "retries,copies_lost");
  int rows = 0;
  for (std::string line; std::getline(csv, line);) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 4);
}

#if MESHPRAM_TELEMETRY

TEST(Telemetry, InternedLabelsRoundTrip) {
  const telemetry::Label a = telemetry::intern("test.label_a");
  const telemetry::Label b = telemetry::intern("test.label_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(telemetry::intern("test.label_a"), a);
  EXPECT_EQ(telemetry::label_name(a), "test.label_a");
  EXPECT_EQ(telemetry::label_name(b), "test.label_b");
}

TEST(Telemetry, DisabledRecordsNothing) {
  telemetry::set_enabled(false);
  telemetry::clear();
  EXPECT_FALSE(telemetry::sampling_on());
  run_workload(1);
  const telemetry::BufferStats bs = telemetry::buffer_stats();
  EXPECT_EQ(bs.recorded, 0u);
  EXPECT_EQ(bs.dropped, 0u);
  set_execution_threads(0);
}

/// Chrome trace round-trip: the emitted JSON parses, Stage spans nest inside
/// their PRAM Step span, and the steps attributed to Stage spans sum exactly
/// to the Step spans' grand total (the trace_summary reconciliation
/// invariant).
TEST(Telemetry, ChromeTraceRoundTripAndStagePartition) {
  telemetry::clear();
  telemetry::set_sample_every(1);
  telemetry::set_enabled(true);
  const WorkloadResult r = run_workload(2);
  telemetry::set_enabled(false);
  set_execution_threads(0);

  std::stringstream ss;
  telemetry::write_chrome_trace(ss);
  const telemetry::LoadedTrace trace = telemetry::load_chrome_trace(ss);
  ASSERT_FALSE(trace.events.empty());
  EXPECT_GT(trace.recorded, 0u);

  i64 stage_sum = 0;
  i64 step_sum = 0;
  int step_count = 0;
  std::vector<const telemetry::LoadedEvent*> steps;
  for (const telemetry::LoadedEvent& e : trace.events) {
    if (e.ph != 'X') continue;
    if (e.cat == "stage") {
      ASSERT_GE(e.steps, 0) << "stage span without a step payload: " << e.name;
      stage_sum += e.steps;
    } else if (e.cat == "step") {
      ASSERT_GE(e.steps, 0);
      step_sum += e.steps;
      ++step_count;
      steps.push_back(&e);
    }
  }
  EXPECT_EQ(step_count, 2) << "one write step + one read step";
  EXPECT_EQ(stage_sum, step_sum)
      << "Stage spans must partition the PRAM step totals";
  EXPECT_EQ(step_sum, r.write_stats.total_steps + r.read_stats.total_steps);

  // Span nesting. Stage spans run on the protocol's caller thread, so they
  // must nest inside a step span with the same tid; phase/region spans may
  // run on pool workers (other tids) but still lie inside some step span's
  // time range (the clock base is process-wide).
  const double eps = 1e-3;  // exporter rounds to 1ns = 1e-3 us
  for (const telemetry::LoadedEvent& e : trace.events) {
    if (e.ph != 'X') continue;
    if (e.cat != "stage" && e.cat != "phase" && e.cat != "region") continue;
    const bool same_tid_required = e.cat == "stage";
    const bool nested =
        std::any_of(steps.begin(), steps.end(), [&](const auto* s) {
          return (!same_tid_required || s->tid == e.tid) &&
                 e.ts_us >= s->ts_us - eps &&
                 e.ts_us + e.dur_us <= s->ts_us + s->dur_us + eps;
        });
    EXPECT_TRUE(nested) << e.cat << " span " << e.name << " (tid " << e.tid
                        << ") escapes every pram.step span";
  }
}

/// Congestion counters: survivors per requesting node sum to the culling
/// selected-copies total; the heatmap CSV carries the same numbers.
TEST(Telemetry, HeatmapCsvMatchesCounters) {
  telemetry::clear();
  telemetry::set_sample_every(1);
  telemetry::set_enabled(true);
  const WorkloadResult r = run_workload(1);
  telemetry::set_enabled(false);
  set_execution_threads(0);

  const telemetry::MeshCounters& c = r.sim->mesh().counters();
  ASSERT_EQ(c.nodes(), r.sim->processors());
  i64 survivors = 0;
  i64 forwarded = 0;
  i64 max_queue = 0;
  for (i64 node = 0; node < c.nodes(); ++node) {
    survivors += c.survivors()[static_cast<size_t>(node)];
    forwarded += c.forwarded()[static_cast<size_t>(node)];
    max_queue =
        std::max(max_queue, c.max_queue()[static_cast<size_t>(node)]);
  }
  // Both steps ran with sampling on: write + read culling selections.
  EXPECT_EQ(survivors, r.write_stats.culling.selected_copies +
                           r.read_stats.culling.selected_copies);
  EXPECT_GT(forwarded, 0) << "packets must have moved through the mesh";
  EXPECT_GE(max_queue, 1);

  std::stringstream csv;
  telemetry::write_heatmap_csv(c, csv);
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header,
            "node,row,col,max_queue,forwarded,copies_touched,survivors,"
            "retries,copies_lost");
  i64 csv_rows = 0;
  i64 csv_survivors = 0;
  for (std::string line; std::getline(csv, line);) {
    if (line.empty()) continue;
    ++csv_rows;
    // survivors is the 7th of the 9 columns.
    size_t pos = 0;
    for (int field = 0; field < 6; ++field) {
      pos = line.find(',', pos);
      ASSERT_NE(pos, std::string::npos);
      ++pos;
    }
    csv_survivors += std::stoll(line.substr(pos));
  }
  EXPECT_EQ(csv_rows, c.nodes());
  EXPECT_EQ(csv_survivors, survivors);
}

TEST(Telemetry, StageSummaryListsRecordedSpans) {
  telemetry::clear();
  telemetry::set_sample_every(1);
  telemetry::set_enabled(true);
  run_workload(1);
  telemetry::set_enabled(false);
  set_execution_threads(0);

  std::stringstream ss;
  telemetry::write_stage_summary(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("pram.step"), std::string::npos);
  EXPECT_NE(out.find("culling.iter"), std::string::npos);
  EXPECT_NE(out.find("access.forward"), std::string::npos);
  EXPECT_NE(out.find("access.return"), std::string::npos);
}

/// The PerfSample overload appends a hardware-counter footer only when the
/// sample was actually readable (perf_event_open may be unavailable in
/// containers); the span table itself is identical either way.
TEST(Telemetry, StageSummaryPerfFooterTracksAvailability) {
  telemetry::clear();
  telemetry::set_sample_every(1);
  telemetry::set_enabled(true);
  run_workload(1);
  telemetry::set_enabled(false);
  set_execution_threads(0);

  telemetry::PerfSample absent;  // default: available == false
  std::stringstream without;
  telemetry::write_stage_summary(without, absent);
  EXPECT_EQ(without.str().find("llc_miss_rate"), std::string::npos);
  EXPECT_NE(without.str().find("pram.step"), std::string::npos);

  telemetry::PerfSample sample;
  sample.available = true;
  sample.instructions = 1000;
  sample.cycles = 500;
  sample.cache_refs = 100;
  sample.cache_misses = 25;
  sample.branch_misses = 7;
  std::stringstream with;
  telemetry::write_stage_summary(with, sample);
  EXPECT_NE(with.str().find("llc_miss_rate"), std::string::npos);
  EXPECT_NE(with.str().find("branch_misses"), std::string::npos);
  // Footer table must carry the derived rates computed from the raw counts.
  EXPECT_EQ(sample.llc_miss_rate(), 0.25);
  EXPECT_EQ(sample.ipc(), 2.0);
}

/// Ring wrap-around: oldest events are overwritten, newest survive, and the
/// drop accounting reports exactly what was lost.
TEST(Telemetry, RingWrapKeepsNewestAndCountsDropped) {
  telemetry::set_ring_capacity(16);
  telemetry::set_enabled(true);
  telemetry::set_sample_every(1);
  const telemetry::Label label = telemetry::intern("test.wrap");
  for (i64 i = 0; i < 100; ++i) {
    telemetry::record_counter(label, telemetry::Cat::Counter, i);
  }
  telemetry::set_enabled(false);

  const telemetry::BufferStats bs = telemetry::buffer_stats();
  EXPECT_EQ(bs.recorded, 100u);
  EXPECT_EQ(bs.dropped, 84u);

  // The surviving window is the 16 newest samples, oldest first.
  bool found = false;
  for (int tid = 0; tid < telemetry::thread_count(); ++tid) {
    const std::vector<telemetry::Event> events = telemetry::thread_events(tid);
    if (events.empty()) continue;
    found = true;
    ASSERT_EQ(events.size(), 16u);
    for (size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].steps, static_cast<i64>(84 + i));
      EXPECT_EQ(events[i].label, label);
    }
  }
  EXPECT_TRUE(found);
  telemetry::set_ring_capacity(size_t{1} << 17);  // restore the default
}

/// set_sample_every(n) records every n-th PRAM step: over any 6 consecutive
/// frames with n=3, exactly 2 are sampled.
TEST(Telemetry, SamplingEveryNthFrame) {
  telemetry::set_enabled(true);
  telemetry::set_sample_every(3);
  int sampled = 0;
  for (int i = 0; i < 6; ++i) {
    telemetry::begin_frame();
    if (telemetry::sampling_on()) ++sampled;
  }
  EXPECT_EQ(sampled, 2);
  telemetry::set_sample_every(1);
  telemetry::set_enabled(false);
  telemetry::clear();
}

#endif  // MESHPRAM_TELEMETRY

}  // namespace
}  // namespace meshpram
