// Multi-process distributed ranks (src/dist socket/supervisor/worker): the
// tagged-frame and control codecs, the deterministic wire-fault injector,
// and the load-bearing guarantees — a ProcMachine over real sockets (unix
// and tcp) is bit-identical to the single-process oracle, and stays so
// through worker kills, hangs and injected wire faults via
// checkpoint-restore-replay recovery.
#include <gtest/gtest.h>

#include <signal.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "dist/proc_wire.hpp"
#include "dist/serve.hpp"
#include "dist/supervisor.hpp"
#include "dist/wire_fault.hpp"
#include "serve/snapshot.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram::dist {
namespace {

SimConfig mid_mem_config(int side, int k = 3) {
  const i64 n = static_cast<i64>(side) * side;
  SimConfig cfg;
  cfg.mesh_rows = side;
  cfg.mesh_cols = side;
  cfg.num_vars = static_cast<i64>(std::llround(std::pow(
      static_cast<double>(n), 1.5)));
  cfg.q = 3;
  cfg.k = k;
  cfg.sort_mode = SortMode::Analytic;
  cfg.fault_plan_from_env = false;
  return cfg;
}

std::vector<AccessRequest> random_requests(i64 n, i64 num_vars, Rng& rng,
                                           Op op = Op::Read) {
  std::vector<i64> pool(static_cast<size_t>(std::min(num_vars, 4 * n)));
  std::iota(pool.begin(), pool.end(), i64{0});
  std::vector<AccessRequest> reqs(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const i64 j = rng.range(i, static_cast<i64>(pool.size()) - 1);
    std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
    reqs[static_cast<size_t>(i)] = {pool[static_cast<size_t>(i)], op,
                                    op == Op::Write ? i + 100 : 0};
  }
  return reqs;
}

/// Smallest side from {16, 32, 64} whose HMOS geometry admits >= want ranks.
int pick_side(int want, int k = 3) {
  for (const int side : {16, 32, 64}) {
    if (ProcMachine::max_ranks(mid_mem_config(side, k)) >= want) return side;
  }
  return 0;
}

void expect_stats_eq(const StepStats& a, const StepStats& b) {
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.culling_steps, b.culling_steps);
  EXPECT_EQ(a.forward_steps, b.forward_steps);
  EXPECT_EQ(a.return_steps, b.return_steps);
  EXPECT_EQ(a.forward_stage_steps, b.forward_stage_steps);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.fault.copies_lost, b.fault.copies_lost);
  EXPECT_EQ(a.fault.requests_failed, b.fault.requests_failed);
  EXPECT_EQ(a.request_ok, b.request_ok);
}

/// Socket knobs tuned for test speed: fast heartbeats, short-but-safe
/// deadlines (a side-16 step computes in well under a second).
SocketConfig fast_socket(const std::string& transport = "unix") {
  SocketConfig sc;
  sc.transport = transport;
  sc.heartbeat_ms = 50;
  sc.peer_deadline_ms = 5000;
  sc.recv_deadline_ms = 5000;
  return sc;
}

ProcConfig proc_config(const SimConfig& sim, int ranks,
                       const std::string& transport = "unix") {
  ProcConfig pc;
  pc.sim = sim;
  pc.ranks = ranks;
  pc.validate = 0;
  pc.socket = fast_socket(transport);
  return pc;
}

// ---------------------------------------------------------------- wire codecs

TEST(ProcWire, TaggedFrameRoundTrip) {
  const std::string packed =
      pack_frame(FrameKind::Data, 2, 1, 7, "payload-bytes");
  // Outer framing: u32 length prefix + payload.
  serve::FrameBuffer fb;
  fb.append(packed.data(), packed.size());
  const auto payload = fb.next_payload();
  ASSERT_TRUE(payload.has_value());
  const TaggedFrame f = unpack_frame(*payload);
  EXPECT_EQ(f.kind, FrameKind::Data);
  EXPECT_EQ(f.from, 2);
  EXPECT_EQ(f.to, 1);
  EXPECT_EQ(f.epoch, 7u);
  EXPECT_EQ(f.body, "payload-bytes");
  EXPECT_FALSE(fb.next_payload().has_value());

  // Ctrl frames carry no epoch field.
  const std::string ctrl = pack_frame(FrameKind::Ctrl, 1, 0, 0, "x");
  serve::FrameBuffer fb2;
  fb2.append(ctrl.data(), ctrl.size());
  const TaggedFrame g = unpack_frame(*fb2.next_payload());
  EXPECT_EQ(g.kind, FrameKind::Ctrl);
  EXPECT_EQ(g.body, "x");
}

TEST(ProcWire, CodecRoundTrips) {
  const std::string hello = pack_frame(FrameKind::Hello, 3, 0, 0,
                                       encode_hello(3, 4, 0xdeadbeefcafeULL));
  {
    serve::FrameBuffer fb;
    fb.append(hello.data(), hello.size());
    const TaggedFrame f = unpack_frame(*fb.next_payload());
    EXPECT_EQ(f.kind, FrameKind::Hello);
    const Hello h = decode_hello(f.body);
    EXPECT_EQ(h.rank, 3);
    EXPECT_EQ(h.ranks, 4);
    EXPECT_EQ(h.token, 0xdeadbeefcafeULL);
  }

  InitMsg init;
  init.epoch = 5;
  init.validate = true;
  init.telemetry = false;
  init.snapshot = "snapshot-blob";
  {
    const std::string body = encode_init(init);
    ASSERT_EQ(static_cast<CtrlOp>(body[0]), CtrlOp::Init);
    ByteReader r(std::string_view(body).substr(1), "init");
    const InitMsg out = decode_init(r);
    EXPECT_EQ(out.epoch, 5u);
    EXPECT_TRUE(out.validate);
    EXPECT_FALSE(out.telemetry);
    EXPECT_EQ(out.snapshot, "snapshot-blob");
  }

  StepMsg step;
  step.timestamp = 42;
  step.requests = {{7, Op::Write, 99}, {-1, Op::Read, 0}, {3, Op::Read, 0}};
  {
    const std::string body = encode_step(step);
    ASSERT_EQ(static_cast<CtrlOp>(body[0]), CtrlOp::Step);
    ByteReader r(std::string_view(body).substr(1), "step");
    const StepMsg out = decode_step(r);
    EXPECT_EQ(out.timestamp, 42);
    ASSERT_EQ(out.requests.size(), 3u);
    EXPECT_EQ(out.requests[0].var, 7);
    EXPECT_EQ(out.requests[0].op, Op::Write);
    EXPECT_EQ(out.requests[0].value, 99);
    EXPECT_EQ(out.requests[1].var, -1);
  }

  BandsMsg bands;
  bands.stores = "stores";
  bands.counters = "counters";
  bands.boundary_hops = 11;
  bands.boundary_bytes = 22;
  bands.wait_calls = 33;
  bands.wait_ms = 1.5;
  {
    const std::string body = encode_bands_reply(bands);
    ASSERT_EQ(static_cast<CtrlOp>(body[0]), CtrlOp::BandsReply);
    ByteReader r(std::string_view(body).substr(1), "bands");
    const BandsMsg out = decode_bands_reply(r);
    EXPECT_EQ(out.stores, "stores");
    EXPECT_EQ(out.counters, "counters");
    EXPECT_EQ(out.boundary_hops, 11);
    EXPECT_EQ(out.boundary_bytes, 22);
    EXPECT_EQ(out.wait_calls, 33);
    EXPECT_DOUBLE_EQ(out.wait_ms, 1.5);
  }
}

TEST(ProcWire, MalformedFramesThrow) {
  // Truncation at every prefix of a valid tagged payload must throw, not UB.
  const std::string packed = pack_frame(FrameKind::Data, 0, 1, 3, "body");
  const std::string_view payload = std::string_view(packed).substr(4);
  for (size_t len = 0; len < 9; ++len) {  // header needs 9 bytes for Data
    EXPECT_THROW(unpack_frame(payload.substr(0, len)), ConfigError)
        << "len=" << len;
  }
  // Unknown frame kind.
  std::string bogus(payload);
  bogus[0] = 0x7f;
  EXPECT_THROW(unpack_frame(bogus), ConfigError);
  // Truncated Step body.
  StepMsg step;
  step.timestamp = 1;
  step.requests = {{1, Op::Read, 0}};
  const std::string body = encode_step(step);
  for (size_t len = 1; len + 1 < body.size(); ++len) {
    ByteReader r(std::string_view(body).substr(1, len), "step");
    EXPECT_THROW(decode_step(r), ConfigError) << "len=" << len;
  }
  // Implausible request count (claims more than the bytes can hold).
  {
    std::string buf;
    ByteWriter w(buf);
    w.put_i64(0);
    w.put_u32(0xffffffffu);
    ByteReader r(buf, "step");
    EXPECT_THROW(decode_step(r), ConfigError);
  }
}

TEST(ProcWire, BandStateRoundTrip) {
  const SimConfig cfg = mid_mem_config(16);
  PramMeshSimulator sim(cfg);
  const i64 n = static_cast<i64>(16) * 16;
  Rng rng(3);
  const auto writes = random_requests(n, cfg.num_vars, rng, Op::Write);
  sim.step(writes);

  RankPartition part(sim.placement(), cfg.mesh_rows, cfg.mesh_cols, 2);
  // Encode band 1 from the source, decode into a fresh sim, re-encode: the
  // canonical bytes must agree, and foreign bands must stay empty.
  const std::string blob = encode_band_stores(sim.mesh(), part.band(1));
  PramMeshSimulator fresh(sim.config());
  decode_band_stores(fresh.mesh(), part.band(1), blob);
  EXPECT_EQ(encode_band_stores(fresh.mesh(), part.band(1)), blob);

  // drop_foreign_stores leaves only the owned band.
  const auto clone =
      serve::restore_simulator(serve::snapshot_simulator(sim));
  drop_foreign_stores(clone->mesh(), part, 1);
  const RankBand& b0 = part.band(0);
  for (i64 node = b0.node_begin; node < b0.node_end; ++node) {
    EXPECT_TRUE(clone->mesh().store(static_cast<i32>(node)).empty());
  }
  EXPECT_EQ(encode_band_stores(clone->mesh(), part.band(1)), blob);

  // Truncated band blob throws.
  EXPECT_THROW(
      decode_band_stores(fresh.mesh(), part.band(1),
                         std::string_view(blob).substr(0, blob.size() / 2)),
      ConfigError);
}

// ------------------------------------------------------------- fault injector

TEST(WireFault, ParseAndQueries) {
  const WireFaultPlan plan = WireFaultPlan::parse(
      "drop=0:1:5;delay=1:0:2:40;part=0:1:100;kill=1:7", 2);
  EXPECT_TRUE(plan.should_drop(0, 1, 5, 0));
  EXPECT_FALSE(plan.should_drop(0, 1, 4, 0));
  EXPECT_FALSE(plan.should_drop(1, 0, 5, 0));
  EXPECT_TRUE(plan.should_drop(0, 1, 4, 100));  // partition threshold crossed
  EXPECT_TRUE(plan.should_drop(1, 0, 4, 100));  // partitions are symmetric
  EXPECT_EQ(plan.delay_ms(1, 0, 2).value_or(-1), 40);
  EXPECT_FALSE(plan.delay_ms(1, 0, 3).has_value());
  EXPECT_TRUE(plan.should_kill(1, 7));
  EXPECT_FALSE(plan.should_kill(1, 6));
  EXPECT_FALSE(plan.should_kill(0, 100));

  EXPECT_THROW(WireFaultPlan::parse("drop=0:1", 2), ConfigError);
  EXPECT_THROW(WireFaultPlan::parse("drop=0:9:1", 2), ConfigError);
  EXPECT_THROW(WireFaultPlan::parse("drop=0:x:1", 2), ConfigError);
  EXPECT_THROW(WireFaultPlan::parse("nope=1", 2), ConfigError);

  // Seeded plans are deterministic functions of the seed.
  const WireFaultPlan a = WireFaultPlan::seeded_drops(9, 3, 2, 50);
  const WireFaultPlan b = WireFaultPlan::seeded_drops(9, 3, 2, 50);
  ASSERT_EQ(a.drops.size(), b.drops.size());
  EXPECT_EQ(a.drops.size(), 12u);  // 6 directed pairs x 2
  for (size_t i = 0; i < a.drops.size(); ++i) {
    EXPECT_EQ(a.drops[i].index, b.drops[i].index);
  }
  const WireFaultPlan seeded = WireFaultPlan::parse("seed=9:2:50", 3);
  ASSERT_EQ(seeded.drops.size(), a.drops.size());
  for (size_t i = 0; i < a.drops.size(); ++i) {
    EXPECT_EQ(seeded.drops[i].index, a.drops[i].index);
  }
}

// ----------------------------------------------------------- oracle identity

TEST(ProcMachineTest, OracleIdentityUnix) {
  const int side = pick_side(4);
  ASSERT_GT(side, 0) << "no probed side admits 4 ranks";
  const SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;

  telemetry::clear();
  telemetry::set_enabled(true);
  PramMeshSimulator oracle(cfg);
  Rng rng_w(7);
  const auto writes = random_requests(n, cfg.num_vars, rng_w, Op::Write);
  Rng rng_r(7);
  const auto reads = random_requests(n, cfg.num_vars, rng_r, Op::Read);
  std::vector<StepStats> oracle_stats(2);
  const auto ow = oracle.step(writes, &oracle_stats[0]);
  const auto orr = oracle.step(reads, &oracle_stats[1]);

  for (const int ranks : {1, 2, 4}) {
    ProcMachine machine(proc_config(cfg, ranks));
    EXPECT_EQ(machine.ranks(), ranks);
    EXPECT_EQ(machine.transport_kind(), "unix");
    std::vector<StepStats> stats(2);
    const auto dw = machine.step(writes, &stats[0]);
    const auto dr = machine.step(reads, &stats[1]);
    EXPECT_EQ(dw, ow) << "ranks=" << ranks;
    EXPECT_EQ(dr, orr) << "ranks=" << ranks;
    expect_stats_eq(stats[0], oracle_stats[0]);
    expect_stats_eq(stats[1], oracle_stats[1]);
    EXPECT_EQ(machine.now(), oracle.now());
    EXPECT_EQ(machine.recovery().recoveries, 0) << "ranks=" << ranks;

    const telemetry::MeshCounters merged = machine.merged_counters();
    const telemetry::MeshCounters& ref = oracle.mesh().counters();
    EXPECT_EQ(merged.max_queue(), ref.max_queue()) << "ranks=" << ranks;
    EXPECT_EQ(merged.forwarded(), ref.forwarded()) << "ranks=" << ranks;
    EXPECT_EQ(merged.copies_touched(), ref.copies_touched())
        << "ranks=" << ranks;
    EXPECT_EQ(merged.survivors(), ref.survivors()) << "ranks=" << ranks;

    // Snapshot parity with the oracle: same committed state, same bytes.
    EXPECT_EQ(serve::snapshot_simulator(*machine.materialize()),
              serve::snapshot_simulator(oracle))
        << "ranks=" << ranks;

    if (ranks > 1) {
      EXPECT_GT(machine.transport_totals().bytes_sent, 0);
      EXPECT_GT(machine.boundary_bytes(), 0);
      EXPECT_GT(machine.wait_totals().calls, 0);
    }
  }
  telemetry::set_enabled(false);
  telemetry::clear();
}

TEST(ProcMachineTest, OracleIdentityTcp) {
  const int side = pick_side(2);
  ASSERT_GT(side, 0);
  const SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;
  PramMeshSimulator oracle(cfg);
  ProcMachine machine(proc_config(cfg, 2, "tcp"));
  EXPECT_EQ(machine.transport_kind(), "tcp");
  EXPECT_EQ(machine.address().rfind("tcp:", 0), 0u);
  Rng rng(11);
  const auto reqs = random_requests(n, cfg.num_vars, rng);
  StepStats ost;
  StepStats pst;
  EXPECT_EQ(machine.step(reqs, &pst), oracle.step(reqs, &ost));
  expect_stats_eq(pst, ost);
}

TEST(ProcMachineTest, ValidateModeStaysGreen) {
  const int side = pick_side(2);
  ASSERT_GT(side, 0);
  const SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;
  PramMeshSimulator oracle(cfg);
  ProcConfig pc = proc_config(cfg, 2);
  pc.validate = 1;
  ProcMachine machine(pc);
  EXPECT_TRUE(machine.validate());
  Rng rng(13);
  const auto reqs = random_requests(n, cfg.num_vars, rng);
  EXPECT_EQ(machine.step(reqs), oracle.step(reqs));
}

// ------------------------------------------------------------- fault recovery

TEST(ProcMachineTest, KillRankRecoversBitIdentically) {
  const int side = pick_side(2);
  ASSERT_GT(side, 0);
  const SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;

  PramMeshSimulator oracle(cfg);
  ProcMachine machine(proc_config(cfg, 2));

  Rng rng_w(17);
  const auto writes = random_requests(n, cfg.num_vars, rng_w, Op::Write);
  StepStats ost0;
  StepStats pst0;
  EXPECT_EQ(machine.step(writes, &pst0), oracle.step(writes, &ost0));
  expect_stats_eq(pst0, ost0);

  // SIGKILL the worker between steps: the next step must detect the dead
  // link, respawn, restore from the checkpoint and still match the oracle.
  machine.kill_rank(1);
  Rng rng_r(17);
  const auto reads = random_requests(n, cfg.num_vars, rng_r, Op::Read);
  StepStats ost1;
  StepStats pst1;
  const auto ov = oracle.step(reads, &ost1);
  const auto pv = machine.step(reads, &pst1);
  EXPECT_EQ(pv, ov);
  expect_stats_eq(pst1, ost1);
  EXPECT_GE(machine.recovery().failures, 1);
  EXPECT_GE(machine.recovery().recoveries, 1);
  EXPECT_GE(machine.recovery().respawns, 1);
  EXPECT_GT(machine.recovery().last_blackout_ms, 0);
  EXPECT_EQ(machine.now(), oracle.now());

  // The recovered machine's state is byte-identical to the oracle's — the
  // same hash a no-kill run would produce.
  EXPECT_EQ(serve::snapshot_simulator(*machine.materialize()),
            serve::snapshot_simulator(oracle));
}

TEST(ProcMachineTest, HeartbeatDeadlineCatchesHungWorker) {
  const int side = pick_side(2);
  ASSERT_GT(side, 0);
  const SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;

  PramMeshSimulator oracle(cfg);
  ProcConfig pc = proc_config(cfg, 2);
  // Tight liveness so the hang is detected quickly; the recv deadline stays
  // larger so the *hub* diagnosis (heartbeat silence), not a recv timeout,
  // is what trips first on the idle machine.
  pc.socket.heartbeat_ms = 30;
  pc.socket.peer_deadline_ms = 500;
  pc.socket.recv_deadline_ms = 4000;
  ProcMachine machine(pc);

  Rng rng_w(19);
  const auto writes = random_requests(n, cfg.num_vars, rng_w, Op::Write);
  EXPECT_EQ(machine.step(writes), oracle.step(writes));

  // SIGSTOP = hung, not dead: the socket stays open, heartbeats stop. The
  // supervisor must SIGKILL and respawn it.
  const pid_t pid = machine.worker_pid(1);
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(pid, SIGSTOP), 0);

  Rng rng_r(19);
  const auto reads = random_requests(n, cfg.num_vars, rng_r, Op::Read);
  const auto ov = oracle.step(reads);
  const auto pv = machine.step(reads);
  EXPECT_EQ(pv, ov);
  EXPECT_GE(machine.recovery().recoveries, 1);
  EXPECT_GE(machine.recovery().respawns, 1);
  EXPECT_NE(machine.worker_pid(1), pid);  // a fresh process took the rank
}

TEST(ProcMachineTest, WireFaultDropRecovers) {
  const int side = pick_side(2);
  ASSERT_GT(side, 0);
  const SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;

  PramMeshSimulator oracle(cfg);
  ProcConfig pc = proc_config(cfg, 2);
  pc.socket.recv_deadline_ms = 1500;  // the dropped frame surfaces fast
  pc.socket.fault.drop_frame(0, 1, 2);
  ProcMachine machine(pc);

  Rng rng(23);
  const auto reqs = random_requests(n, cfg.num_vars, rng);
  const auto ov = oracle.step(reqs);
  const auto pv = machine.step(reqs);
  EXPECT_EQ(pv, ov);
  // The drop starves rank 1, whose recv deadline converts it into a typed
  // failure; recovery replays and the retried step sees no fault (drops
  // fire once).
  EXPECT_GE(machine.recovery().failures, 1);
  EXPECT_GE(machine.recovery().recoveries, 1);
}

TEST(ProcMachineTest, WireFaultDelayIsHarmless) {
  const int side = pick_side(2);
  ASSERT_GT(side, 0);
  const SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;

  PramMeshSimulator oracle(cfg);
  ProcConfig pc = proc_config(cfg, 2);
  pc.socket.fault.delay_frame(0, 1, 0, 120).delay_frame(1, 0, 1, 80);
  ProcMachine machine(pc);

  Rng rng(29);
  const auto reqs = random_requests(n, cfg.num_vars, rng);
  EXPECT_EQ(machine.step(reqs), oracle.step(reqs));
  // Latency reorders nothing (per-link FIFO holds) and loses nothing.
  EXPECT_EQ(machine.recovery().failures, 0);
}

TEST(ProcMachineTest, WorkerKillFaultRecovers) {
  const int side = pick_side(2);
  ASSERT_GT(side, 0);
  const SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;

  PramMeshSimulator oracle(cfg);
  ProcConfig pc = proc_config(cfg, 2);
  pc.socket.fault.kill_after(1, 3);  // sever rank 1 after 3 Data frames
  ProcMachine machine(pc);

  Rng rng_w(31);
  const auto writes = random_requests(n, cfg.num_vars, rng_w, Op::Write);
  StepStats ost;
  StepStats pst;
  EXPECT_EQ(machine.step(writes, &pst), oracle.step(writes, &ost));
  expect_stats_eq(pst, ost);
  EXPECT_GE(machine.recovery().recoveries, 1);

  // And the stream continues bit-identically after the one-shot kill.
  Rng rng_r(31);
  const auto reads = random_requests(n, cfg.num_vars, rng_r, Op::Read);
  EXPECT_EQ(machine.step(reads), oracle.step(reads));
  EXPECT_EQ(serve::snapshot_simulator(*machine.materialize()),
            serve::snapshot_simulator(oracle));
}

// --------------------------------------------------------------- serve glue

TEST(ProcServe, SnapshotRestoreAcrossEnginesMidRun) {
  const int side = pick_side(4);
  ASSERT_GT(side, 0);
  const SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;
  Rng rng(55);
  const auto writes = random_requests(n, cfg.num_vars, rng, Op::Write);
  Rng rng2(55);
  const auto reads = random_requests(n, cfg.num_vars, rng2, Op::Read);

  // A proc-backed session runs some work, then snapshots mid-run.
  serve::SessionManager m0;
  serve::Session& s0 = create_proc_session(m0, "snap", proc_config(cfg, 2));
  EXPECT_FALSE(s0.has_sim());
  StepStats st;
  s0.step(writes, &st);
  const std::string bytes = s0.snapshot();

  // Restore onto 4 process ranks, onto 1, and onto a classic simulator; all
  // continuations must agree and re-snapshot to identical bytes.
  serve::SessionManager m4;
  serve::Session& s4 = restore_proc_session(m4, "snap", bytes, 4,
                                            proc_config(cfg, 4));
  serve::SessionManager m1;
  serve::Session& s1 = restore_proc_session(m1, "snap", bytes, 1,
                                            proc_config(cfg, 1));
  serve::SessionManager mc;
  serve::Session& sc = mc.restore("snap", bytes);
  ASSERT_TRUE(sc.has_sim());

  StepStats st4;
  StepStats st1;
  StepStats stc;
  const auto v4 = s4.step(reads, &st4);
  const auto v1 = s1.step(reads, &st1);
  const auto vc = sc.step(reads, &stc);
  EXPECT_EQ(v4, vc);
  EXPECT_EQ(v1, vc);
  expect_stats_eq(st4, stc);
  expect_stats_eq(st1, stc);
  EXPECT_EQ(s4.snapshot(), sc.snapshot());
  EXPECT_EQ(s1.snapshot(), sc.snapshot());
}

}  // namespace
}  // namespace meshpram::dist
