// Tests for the extension layer: CRCW combining frontend and the additional
// PRAM algorithms (odd-even transposition sort, skewed matrix-vector).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algo/staples.hpp"
#include "pram/backend.hpp"
#include "pram/combining.hpp"
#include "pram/mesh_backend.hpp"
#include "pram/program.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram {
namespace {

SimConfig tiny_config() {
  SimConfig cfg;
  cfg.mesh_rows = 8;
  cfg.mesh_cols = 8;
  cfg.num_vars = 1080;
  return cfg;
}

// ---------------------------------------------------------------------------
// CombiningBackend (CRCW -> EREW).
// ---------------------------------------------------------------------------

TEST(Combining, ConcurrentReadsAllSeeTheValue) {
  IdealBackend inner(8, 100);
  CombiningBackend crcw(inner);
  crcw.step({{5, Op::Write, 42}});
  const auto r = crcw.step({{5, Op::Read, 0},
                            {5, Op::Read, 0},
                            {5, Op::Read, 0},
                            {7, Op::Read, 0}});
  EXPECT_EQ(r[0], 42);
  EXPECT_EQ(r[1], 42);
  EXPECT_EQ(r[2], 42);
  EXPECT_EQ(r[3], 0);
  EXPECT_GE(crcw.combined_groups(), 1);
}

TEST(Combining, PriorityWriteLowestProcessorWins) {
  IdealBackend inner(8, 100);
  CombiningBackend crcw(inner);
  crcw.step({{9, Op::Write, 111}, {9, Op::Write, 222}, {9, Op::Write, 333}});
  const auto r = crcw.step({{9, Op::Read, 0}});
  EXPECT_EQ(r[0], 111);  // processor 0's write wins
}

TEST(Combining, ReadersSeePreStepValueWhenAlsoWritten) {
  IdealBackend inner(8, 100);
  CombiningBackend crcw(inner);
  crcw.step({{3, Op::Write, 10}});
  const auto r = crcw.step({{3, Op::Read, 0}, {3, Op::Write, 20}});
  EXPECT_EQ(r[0], 10);  // CRCW semantics: reads before writes
  EXPECT_EQ(crcw.step({{3, Op::Read, 0}})[0], 20);
}

TEST(Combining, WorksOnTheMeshBackendToo) {
  MeshBackend inner(tiny_config());
  CombiningBackend crcw(inner);
  crcw.step({{1, Op::Write, 5}, {1, Op::Write, 6}, {2, Op::Write, 7}});
  const auto r = crcw.step(
      {{1, Op::Read, 0}, {1, Op::Read, 0}, {2, Op::Read, 0}});
  EXPECT_EQ(r[0], 5);
  EXPECT_EQ(r[1], 5);
  EXPECT_EQ(r[2], 7);
  EXPECT_GT(crcw.total_mesh_steps(), 0);
}

TEST(Combining, PureErewPassesThroughUnchanged) {
  IdealBackend a(8, 100), b(8, 100);
  CombiningBackend crcw(a);
  const std::vector<AccessRequest> reqs{
      {1, Op::Write, 10}, {2, Op::Write, 20}, {3, Op::Read, 0}};
  crcw.step(reqs);
  b.step(reqs);
  EXPECT_EQ(crcw.step({{1, Op::Read, 0}})[0], b.step({{1, Op::Read, 0}})[0]);
}

TEST(Combining, CombinedGroupsCountEveryContentionShape) {
  IdealBackend inner(8, 100);
  CombiningBackend crcw(inner);
  // Exclusive accesses: nothing to combine.
  crcw.step({{1, Op::Write, 1}, {2, Op::Write, 2}, {3, Op::Read, 0}});
  EXPECT_EQ(crcw.combined_groups(), 0);
  // Fan-out read group.
  crcw.step({{1, Op::Read, 0}, {1, Op::Read, 0}});
  EXPECT_EQ(crcw.combined_groups(), 1);
  // Racing writes.
  crcw.step({{2, Op::Write, 5}, {2, Op::Write, 6}});
  EXPECT_EQ(crcw.combined_groups(), 2);
  // Read + write of the same variable is a combined group too: the
  // reduction must schedule the read before the write.
  crcw.step({{3, Op::Read, 0}, {3, Op::Write, 9}});
  EXPECT_EQ(crcw.combined_groups(), 3);
  // Two concurrent groups in one step count twice.
  crcw.step({{4, Op::Read, 0}, {4, Op::Read, 0}, {5, Op::Write, 1},
             {5, Op::Write, 2}});
  EXPECT_EQ(crcw.combined_groups(), 5);
}

// Randomized differential check: a reference Priority-CRCW machine written
// straight against a value array must agree with CombiningBackend over an
// IdealBackend on arbitrary request mixes.
TEST(Combining, RandomizedDifferentialAgainstFlatCrcwReference) {
  const i64 procs = 16, vars = 24;
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    IdealBackend inner(procs, vars);
    CombiningBackend crcw(inner);
    std::vector<i64> model(static_cast<size_t>(vars), 0);
    for (int step = 0; step < 40; ++step) {
      std::vector<AccessRequest> reqs(static_cast<size_t>(procs));
      for (auto& r : reqs) {
        if (rng.below(5) == 0) continue;  // idle slot (var = -1)
        // Small variable range on purpose: dense collisions every step.
        r.var = rng.range(0, vars / 3);
        r.op = rng.below(2) == 0 ? Op::Read : Op::Write;
        r.value = rng.range(-100, 100);
      }
      const auto got = crcw.step(reqs);
      // Reference: all reads see the pre-step memory, then the
      // lowest-index writer of each variable lands.
      for (size_t p = 0; p < reqs.size(); ++p) {
        if (reqs[p].var >= 0 && reqs[p].op == Op::Read) {
          EXPECT_EQ(got[p], model[static_cast<size_t>(reqs[p].var)])
              << "trial " << trial << " step " << step << " proc " << p;
        }
      }
      std::vector<char> written(static_cast<size_t>(vars), 0);
      for (const AccessRequest& r : reqs) {
        if (r.var < 0 || r.op != Op::Write) continue;
        if (written[static_cast<size_t>(r.var)]) continue;
        written[static_cast<size_t>(r.var)] = 1;
        model[static_cast<size_t>(r.var)] = r.value;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// OddEvenSortProgram.
// ---------------------------------------------------------------------------

TEST(OddEvenSort, SortsOnIdealBackend) {
  Rng rng(21);
  for (i64 n : {1, 2, 3, 8, 17, 40}) {
    std::vector<i64> input(static_cast<size_t>(n));
    for (auto& x : input) x = rng.range(-100, 100);
    auto want = input;
    std::sort(want.begin(), want.end());
    IdealBackend backend(n, n + 4);
    OddEvenSortProgram prog(input);
    run_program(prog, backend);
    EXPECT_EQ(prog.result(), want) << "n=" << n;
  }
}

TEST(OddEvenSort, SortsOnMeshBackend) {
  Rng rng(22);
  std::vector<i64> input(48);
  for (auto& x : input) x = rng.range(0, 999);
  auto want = input;
  std::sort(want.begin(), want.end());
  MeshBackend backend(tiny_config());
  OddEvenSortProgram prog(input);
  run_program(prog, backend);
  EXPECT_EQ(prog.result(), want);
  EXPECT_GT(backend.total_mesh_steps(), 0);
}

TEST(OddEvenSort, AlreadySortedAndReverse) {
  for (bool reverse : {false, true}) {
    std::vector<i64> input(20);
    for (i64 i = 0; i < 20; ++i) {
      input[static_cast<size_t>(i)] = reverse ? 20 - i : i;
    }
    IdealBackend backend(20, 24);
    OddEvenSortProgram prog(input);
    run_program(prog, backend);
    auto want = input;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(prog.result(), want);
  }
}

// ---------------------------------------------------------------------------
// MatVecProgram.
// ---------------------------------------------------------------------------

TEST(MatVec, MatchesReferenceOnIdealBackend) {
  Rng rng(23);
  for (i64 s : {1, 2, 5, 12}) {
    std::vector<i64> a(static_cast<size_t>(s * s));
    std::vector<i64> x(static_cast<size_t>(s));
    for (auto& v : a) v = rng.range(-9, 9);
    for (auto& v : x) v = rng.range(-9, 9);
    IdealBackend backend(s, s * s + 2 * s + 4);
    MatVecProgram prog(s);
    prog.preload(backend, a, x);
    run_program(prog, backend);
    for (i64 i = 0; i < s; ++i) {
      i64 want = 0;
      for (i64 j = 0; j < s; ++j) {
        want += a[static_cast<size_t>(i * s + j)] * x[static_cast<size_t>(j)];
      }
      EXPECT_EQ(prog.result()[static_cast<size_t>(i)], want)
          << "s=" << s << " row " << i;
    }
  }
}

TEST(MatVec, MeshBackendMatchesIdeal) {
  const i64 s = 8;
  Rng rng(24);
  std::vector<i64> a(static_cast<size_t>(s * s));
  std::vector<i64> x(static_cast<size_t>(s));
  for (auto& v : a) v = rng.range(-5, 5);
  for (auto& v : x) v = rng.range(-5, 5);

  IdealBackend ideal(s, 100);
  MatVecProgram p1(s);
  p1.preload(ideal, a, x);
  run_program(p1, ideal);

  MeshBackend mesh(tiny_config());
  MatVecProgram p2(s);
  p2.preload(mesh, a, x);
  run_program(p2, mesh);

  EXPECT_EQ(p1.result(), p2.result());
}

TEST(MatVec, RejectsBadShapes) {
  IdealBackend backend(4, 100);
  MatVecProgram prog(4);
  EXPECT_THROW(prog.preload(backend, std::vector<i64>(15, 0),
                            std::vector<i64>(4, 0)),
               ConfigError);
  EXPECT_THROW(prog.preload(backend, std::vector<i64>(16, 0),
                            std::vector<i64>(3, 0)),
               ConfigError);
}

}  // namespace
}  // namespace meshpram
