// Fault-injection subsystem tests (DESIGN.md §10): plan determinism,
// fault-rate-0 parity with the fault-free engine, routing-level retry /
// detour / drop semantics, degraded-mode equivalence (every successful read
// under a below-threshold plan matches the fault-free value), failure
// reporting above the threshold, and thread-count invariance of FaultReport.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/plan.hpp"
#include "mesh/machine.hpp"
#include "mesh/parallel.hpp"
#include "protocol/simulator.hpp"
#include "routing/greedy.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {
namespace {

// ---------------------------------------------------------------------------
// Fault plans.
// ---------------------------------------------------------------------------

TEST(FaultPlan, RandomPlansAreDeterministic) {
  fault::FaultSpec spec;
  spec.seed = 42;
  spec.node_rate = 0.05;
  spec.module_rate = 0.05;
  spec.link_rate = 0.03;
  spec.stall_rate = 0.05;
  spec.drop_rate = 0.01;
  const fault::FaultPlan a = fault::FaultPlan::random(8, 8, spec);
  const fault::FaultPlan b = fault::FaultPlan::random(8, 8, spec);
  EXPECT_EQ(a.dead_node_count(), b.dead_node_count());
  EXPECT_EQ(a.dead_module_count(), b.dead_module_count());
  EXPECT_EQ(a.dead_link_count(), b.dead_link_count());
  EXPECT_EQ(a.summary(), b.summary());
  for (i32 node = 0; node < 64; ++node) {
    EXPECT_EQ(a.node_dead(node), b.node_dead(node));
    EXPECT_EQ(a.module_dead(node), b.module_dead(node));
    for (int d = 0; d < kNumDirs; ++d) {
      const Dir dir = static_cast<Dir>(d);
      EXPECT_EQ(a.link_dead(node, dir), b.link_dead(node, dir));
      EXPECT_EQ(a.drop(node, dir, 3, 7), b.drop(node, dir, 3, 7));
      EXPECT_EQ(a.link_stalled(node, dir, 0, 2), b.link_stalled(node, dir, 0, 2));
    }
  }
  // Different seeds give different plans (statistically certain at 64 nodes).
  spec.seed = 43;
  const fault::FaultPlan c = fault::FaultPlan::random(8, 8, spec);
  bool differs = c.dead_node_count() != a.dead_node_count() ||
                 c.dead_link_count() != a.dead_link_count();
  for (i32 node = 0; node < 64 && !differs; ++node) {
    differs = c.node_dead(node) != a.node_dead(node) ||
              c.module_dead(node) != a.module_dead(node);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, NodeFaultImpliesModuleAndLinkFaults) {
  fault::FaultPlan plan(4, 4);
  plan.kill_node(5);  // interior node: 4 incident links, both directions
  EXPECT_TRUE(plan.node_dead(5));
  EXPECT_TRUE(plan.module_dead(5));
  for (int d = 0; d < kNumDirs; ++d) {
    EXPECT_TRUE(plan.link_dead(5, static_cast<Dir>(d)));
  }
  // Symmetric: the neighbors' links toward node 5 are dead too.
  EXPECT_TRUE(plan.link_dead(1, Dir::South));
  EXPECT_TRUE(plan.link_dead(9, Dir::North));
  EXPECT_TRUE(plan.link_dead(4, Dir::East));
  EXPECT_TRUE(plan.link_dead(6, Dir::West));
  // But the neighbors themselves are alive.
  EXPECT_FALSE(plan.node_dead(4));
  EXPECT_FALSE(plan.module_dead(6));
  EXPECT_EQ(plan.dead_link_count(), 8);  // 4 wires, both directions
}

TEST(FaultPlan, ParseAcceptsSpecStringsAndRejectsGarbage) {
  const fault::FaultPlan plan =
      fault::FaultPlan::parse(8, 8, "seed=7,modules=0.1,links=0.05,drop=0.01");
  const fault::FaultSpec spec{7, 0, 0.1, 0.05, 0, 1, 4, 0.01};
  const fault::FaultPlan same = fault::FaultPlan::random(8, 8, spec);
  EXPECT_EQ(plan.summary(), same.summary());
  EXPECT_THROW(fault::FaultPlan::parse(8, 8, "bogus=1"), ConfigError);
  EXPECT_THROW(fault::FaultPlan::parse(8, 8, "drop=abc"), ConfigError);
  EXPECT_THROW(fault::FaultPlan::parse(8, 8, "nonsense"), ConfigError);
}

TEST(FaultPlan, ValidateRejectsTotalDeath) {
  fault::FaultPlan plan(2, 2);
  for (i32 node = 0; node < 4; ++node) plan.kill_node(node);
  EXPECT_THROW(plan.validate(), ConfigError);
}

TEST(FaultPlan, EmptyPlanInstallsAsNull) {
  Mesh mesh(4, 4);
  fault::FaultPlan empty(4, 4);
  mesh.set_fault_plan(&empty);
  EXPECT_EQ(mesh.fault_plan(), nullptr);  // empty plan = fault-free fast path
  fault::FaultPlan plan(4, 4);
  plan.kill_module(3);
  mesh.set_fault_plan(&plan);
  EXPECT_EQ(mesh.fault_plan(), &plan);
  mesh.set_fault_plan(nullptr);
  EXPECT_EQ(mesh.fault_plan(), nullptr);
}

// ---------------------------------------------------------------------------
// Fault-aware routing kernel.
// ---------------------------------------------------------------------------

Packet mk_packet(i64 var, i32 origin, i32 dest) {
  Packet p;
  p.var = var;
  p.origin = origin;
  p.dest = dest;
  return p;
}

/// Routes one packet across the given mesh and returns the stats; the packet
/// must end up (alone) in the destination buffer.
RouteStats route_one(Mesh& mesh, i32 from, i32 to) {
  mesh.buf(from).push_back(mk_packet(7, from, to));
  const RouteStats stats = route_greedy(mesh, mesh.whole());
  EXPECT_EQ(static_cast<i64>(mesh.buf(to).size()), 1);
  if (!mesh.buf(to).empty()) {
    EXPECT_EQ(mesh.buf(to).front().var, 7);
  }
  mesh.clear_buffers();
  return stats;
}

TEST(FaultRouting, DetoursAroundDeadLink) {
  Mesh mesh(4, 4);
  const RouteStats base = route_one(mesh, 4, 7);  // straight east along row 1
  fault::FaultPlan plan(4, 4);
  plan.kill_link(5, Dir::East);  // cut the XY path in the middle
  mesh.set_fault_plan(&plan);
  const RouteStats faulty = route_one(mesh, 4, 7);
  EXPECT_GE(faulty.fault_detoured, 1);
  EXPECT_GT(faulty.steps, base.steps);  // detour costs extra hops
  EXPECT_EQ(faulty.fault_dropped, 0);
}

TEST(FaultRouting, DetoursAroundDeadNode) {
  Mesh mesh(4, 4);
  fault::FaultPlan plan(4, 4);
  plan.kill_node(5);
  mesh.set_fault_plan(&plan);
  // 4 -> 6 passes straight through dead node 5 on the XY path.
  const RouteStats stats = route_one(mesh, 4, 6);
  EXPECT_GE(stats.fault_detoured, 1);
}

TEST(FaultRouting, StalledLinkBacksOffThenDelivers) {
  Mesh mesh(4, 4);
  const RouteStats base = route_one(mesh, 0, 3);
  fault::FaultPlan plan(4, 4);
  fault::StallWindow w;
  w.node = 1;
  w.dir = Dir::East;
  w.route_from = 1;
  w.route_to = 3;  // stalled for routing steps 1 and 2
  plan.add_stall(w);
  mesh.set_fault_plan(&plan);
  const RouteStats faulty = route_one(mesh, 0, 3);
  EXPECT_GE(faulty.fault_retried, 1);
  EXPECT_GT(faulty.steps, base.steps);
}

TEST(FaultRouting, DropsAreRetransmittedWithoutLoss) {
  Mesh mesh(8, 8);
  fault::FaultPlan plan(8, 8);
  plan.set_drop_rate(0.3, 99);
  mesh.set_fault_plan(&plan);
  const i64 n = mesh.size();
  for (i32 node = 0; node < n; ++node) {
    // Full reversal permutation: plenty of traversals to hit drops.
    mesh.buf(node).push_back(
        mk_packet(node, node, static_cast<i32>(n - 1 - node)));
  }
  const RouteStats stats = route_greedy(mesh, mesh.whole());
  EXPECT_GT(stats.fault_dropped, 0);
  i64 arrived = 0;
  for (i32 node = 0; node < n; ++node) {
    for (const Packet& p : mesh.buf(node)) {
      EXPECT_EQ(p.var, n - 1 - node);  // right packet at the right node
      ++arrived;
    }
  }
  EXPECT_EQ(arrived, n);  // every packet delivered despite the drops
}

TEST(FaultRouting, RoutingResultsAreDeterministic) {
  fault::FaultPlan plan(8, 8);
  plan.kill_link(9, Dir::East);
  plan.set_drop_rate(0.2, 5);
  std::vector<std::vector<i64>> runs;
  for (int run = 0; run < 2; ++run) {
    Mesh mesh(8, 8);
    mesh.set_fault_plan(&plan);
    const i64 n = mesh.size();
    for (i32 node = 0; node < n; ++node) {
      mesh.buf(node).push_back(
          mk_packet(node, node, static_cast<i32>((node * 13 + 5) % n)));
    }
    const RouteStats stats = route_greedy(mesh, mesh.whole());
    std::vector<i64> digest{stats.steps, stats.fault_retried,
                            stats.fault_dropped, stats.fault_detoured};
    for (i32 node = 0; node < n; ++node) {
      for (const Packet& p : mesh.buf(node)) digest.push_back(p.var);
    }
    runs.push_back(std::move(digest));
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(FaultRouting, UnroutablePlanThrowsFaultError) {
  Mesh mesh(4, 4);
  fault::FaultPlan plan(4, 4);
  // Wall off the top-right corner node 3: both of its links die, but keep a
  // drop rate so affects_routing stays true even if link accounting changes.
  plan.kill_link(3, Dir::West);
  plan.kill_link(3, Dir::South);
  mesh.set_fault_plan(&plan);
  mesh.buf(0).push_back(mk_packet(1, 0, 3));
  EXPECT_THROW(route_greedy(mesh, mesh.whole()), fault::FaultError);
}

// ---------------------------------------------------------------------------
// End-to-end degraded protocol.
// ---------------------------------------------------------------------------

SimConfig small_config() {
  SimConfig cfg;
  cfg.mesh_rows = 8;
  cfg.mesh_cols = 8;
  cfg.num_vars = 256;
  cfg.q = 3;
  cfg.k = 2;
  return cfg;
}

std::vector<i64> iota_vars(i64 n) {
  std::vector<i64> vars(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) vars[static_cast<size_t>(i)] = i;
  return vars;
}

std::vector<AccessRequest> write_reqs(const std::vector<i64>& vars) {
  std::vector<AccessRequest> reqs(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    reqs[i] = {vars[i], Op::Write, static_cast<i64>(i) * 7 + 3};
  }
  return reqs;
}

std::vector<AccessRequest> read_reqs(const std::vector<i64>& vars) {
  std::vector<AccessRequest> reqs(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    reqs[i] = {vars[i], Op::Read, 0};
  }
  return reqs;
}

TEST(FaultProtocol, ZeroRatePlanReproducesBaselineStepsExactly) {
  SimConfig cfg = small_config();
  PramMeshSimulator base(cfg);
  cfg.fault_plan = fault::FaultPlan::random(8, 8, fault::FaultSpec{});
  PramMeshSimulator faulty(cfg);
  EXPECT_EQ(faulty.fault_plan(), nullptr);  // rate 0 = no plan installed
  const auto vars = iota_vars(base.processors());
  StepStats st_base;
  StepStats st_faulty;
  base.step(write_reqs(vars), &st_base);
  faulty.step(write_reqs(vars), &st_faulty);
  EXPECT_EQ(st_base.total_steps, st_faulty.total_steps);
  const auto r_base = base.step(read_reqs(vars), &st_base);
  const auto r_faulty = faulty.step(read_reqs(vars), &st_faulty);
  EXPECT_EQ(st_base.total_steps, st_faulty.total_steps);
  EXPECT_EQ(r_base, r_faulty);
  EXPECT_FALSE(st_faulty.fault.any_faults_hit());
}

/// Below-threshold plans: a handful of module/link/stall/drop faults that
/// leave every variable a surviving ordinary target set. Every successful
/// read must return exactly the fault-free value (quorum intersection +
/// newest timestamp still hold among the survivors).
TEST(FaultProtocol, BelowThresholdReadsMatchFaultFreeValues) {
  const u64 seeds[] = {11, 23, 37};
  for (const u64 seed : seeds) {
    SimConfig cfg = small_config();
    PramMeshSimulator base(cfg);
    fault::FaultSpec spec;
    spec.seed = seed;
    spec.module_rate = 0.04;
    spec.link_rate = 0.02;
    spec.stall_rate = 0.05;
    spec.drop_rate = 0.02;
    cfg.fault_plan = fault::FaultPlan::random(8, 8, spec);
    cfg.fault_plan.validate();
    PramMeshSimulator faulty(cfg);
    ASSERT_NE(faulty.fault_plan(), nullptr);

    const auto vars = iota_vars(base.processors());
    base.step(write_reqs(vars));
    const auto expect = base.step(read_reqs(vars));

    StepStats wst;
    const DegradedResult w = faulty.step_degraded(write_reqs(vars), &wst);
    ASSERT_EQ(w.report.requests_failed, 0)
        << "seed " << seed << " is not below-threshold";
    StepStats rst;
    const DegradedResult r = faulty.step_degraded(read_reqs(vars), &rst);
    ASSERT_EQ(r.report.requests_failed, 0);
    for (i64 node = 0; node < base.processors(); ++node) {
      ASSERT_NE(r.ok[static_cast<size_t>(node)], 0);
      EXPECT_EQ(r.values[static_cast<size_t>(node)],
                expect[static_cast<size_t>(node)])
          << "seed " << seed << " node " << node;
    }
    // The plan actually bit: dead modules lost copies, or routing faults
    // forced retries/detours.
    EXPECT_TRUE(w.report.any_faults_hit() || r.report.any_faults_hit())
        << "seed " << seed << " plan was a no-op: "
        << faulty.fault_plan()->summary();
  }
}

TEST(FaultProtocol, FaultReportIsThreadCountInvariant) {
  fault::FaultSpec spec;
  spec.seed = 23;
  spec.module_rate = 0.04;
  spec.link_rate = 0.02;
  spec.stall_rate = 0.05;
  spec.drop_rate = 0.02;
  std::vector<std::vector<i64>> digests;
  for (const int threads : {1, 4}) {
    set_execution_threads(threads);
    set_stripe_min_nodes(1);  // force the stripe gate even on small meshes
    SimConfig cfg = small_config();
    cfg.fault_plan = fault::FaultPlan::random(8, 8, spec);
    PramMeshSimulator sim(cfg);
    const auto vars = iota_vars(sim.processors());
    StepStats wst;
    sim.step_degraded(write_reqs(vars), &wst);
    StepStats rst;
    const DegradedResult r = sim.step_degraded(read_reqs(vars), &rst);
    std::vector<i64> digest{
        wst.total_steps,          rst.total_steps,
        r.report.copies_lost,     r.report.requests_failed,
        r.report.requests_degraded, r.report.packets_retried,
        r.report.packets_dropped, r.report.packets_detoured};
    digest.insert(digest.end(), r.values.begin(), r.values.end());
    digests.push_back(std::move(digest));
  }
  set_stripe_min_nodes(0);
  set_execution_threads(0);
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(FaultProtocol, UnreadableVariableFailsGracefully) {
  // Learn where var 0's nine copies live, then kill exactly those modules.
  SimConfig cfg = small_config();
  PramMeshSimulator probe(cfg);
  const i64 redundancy = probe.params().redundancy();
  fault::FaultPlan plan(8, 8);
  for (i64 code = 0; code < redundancy; ++code) {
    const Coord holder =
        probe.placement().locate(static_cast<u64>(code)).node;
    plan.kill_module(probe.mesh().node_id(holder));
  }
  cfg.fault_plan = plan;
  PramMeshSimulator sim(cfg);
  const auto vars = iota_vars(sim.processors());
  const DegradedResult r = sim.step_degraded(read_reqs(vars));
  EXPECT_GE(r.report.requests_failed, 1);
  // The origin reading var 0 is node 0 (vars are the identity here).
  EXPECT_EQ(r.ok[0], 0);
  EXPECT_EQ(r.values[0], 0);
  // Other requests still succeed unless they also lost their target sets.
  i64 ok_count = 0;
  for (const char ok : r.ok) ok_count += ok != 0 ? 1 : 0;
  EXPECT_GT(ok_count, sim.processors() / 2);
}

TEST(FaultProtocol, HardFailPolicyThrows) {
  SimConfig cfg = small_config();
  PramMeshSimulator probe(cfg);
  const i64 redundancy = probe.params().redundancy();
  fault::FaultPlan plan(8, 8);
  for (i64 code = 0; code < redundancy; ++code) {
    const Coord holder =
        probe.placement().locate(static_cast<u64>(code)).node;
    plan.kill_module(probe.mesh().node_id(holder));
  }
  cfg.fault_plan = plan;
  cfg.fault_policy = FaultPolicy::HardFail;
  PramMeshSimulator sim(cfg);
  const auto vars = iota_vars(sim.processors());
  EXPECT_THROW(sim.step(read_reqs(vars)), fault::FaultError);
}

TEST(FaultProtocol, DeadOriginRequestsFailUpFront) {
  SimConfig cfg = small_config();
  fault::FaultPlan plan(8, 8);
  plan.kill_node(10);
  cfg.fault_plan = plan;
  PramMeshSimulator sim(cfg);
  const auto vars = iota_vars(sim.processors());
  StepStats st;
  const DegradedResult r = sim.step_degraded(read_reqs(vars), &st);
  EXPECT_EQ(r.ok[10], 0);
  EXPECT_GE(r.report.requests_failed, 1);
  EXPECT_EQ(r.report.dead_nodes, 1);
  // A node fault takes its module with it.
  EXPECT_EQ(r.report.dead_modules, 1);
}

TEST(FaultProtocol, ModuleOnlyPlanKeepsRoutingFastPath) {
  // A plan without routing faults must not change the step count of routing
  // (only culling may select different copies). Verified indirectly: the
  // plan reports no retries/detours/drops end to end.
  SimConfig cfg = small_config();
  fault::FaultPlan plan(8, 8);
  plan.kill_module(20);
  cfg.fault_plan = plan;
  PramMeshSimulator sim(cfg);
  ASSERT_FALSE(sim.fault_plan()->affects_routing());
  const auto vars = iota_vars(sim.processors());
  sim.step_degraded(write_reqs(vars));
  const DegradedResult r = sim.step_degraded(read_reqs(vars));
  EXPECT_EQ(r.report.packets_retried, 0);
  EXPECT_EQ(r.report.packets_dropped, 0);
  EXPECT_EQ(r.report.packets_detoured, 0);
  EXPECT_GT(r.report.copies_lost, 0);
  EXPECT_EQ(r.report.requests_failed, 0);
}

}  // namespace
}  // namespace meshpram
