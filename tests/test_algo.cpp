// Tests for the algorithm workload subsystem (`ctest -L algo`): seeded
// input generators, the CRCW programs (connected components, partition
// refinement), the workload harness's oracle protocol across every backend,
// bit-identity of mesh runs under thread-count/layout changes, and the
// EREW trace recording that feeds serve_loadgen --scenario algo:<name>.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "algo/backends.hpp"
#include "algo/cc.hpp"
#include "algo/harness.hpp"
#include "algo/inputs.hpp"
#include "algo/refine.hpp"
#include "algo/staples.hpp"
#include "mesh/node_order.hpp"
#include "pram/combining.hpp"
#include "pram/mesh_backend.hpp"
#include "pram/program.hpp"
#include "serve/loadgen.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace meshpram::algo {
namespace {

SimConfig tiny_config() {
  SimConfig cfg;
  cfg.mesh_rows = 8;
  cfg.mesh_cols = 8;
  cfg.num_vars = 1080;
  return cfg;
}

// ---------------------------------------------------------------------------
// Input generators.

TEST(Inputs, GraphFamiliesAreDeterministicAndWellFormed) {
  for (const GraphFamily family :
       {GraphFamily::Path, GraphFamily::Star, GraphFamily::Grid,
        GraphFamily::Expander, GraphFamily::RandomForest}) {
    const GraphInput a = make_graph(family, 40, 7);
    const GraphInput b = make_graph(family, 40, 7);
    EXPECT_EQ(a.n, 40) << graph_family_name(family);
    EXPECT_EQ(a.edges, b.edges) << graph_family_name(family);
    for (const auto& [u, v] : a.edges) {
      EXPECT_NE(u, v) << graph_family_name(family);
      EXPECT_GE(u, 0);
      EXPECT_LT(u, a.n);
      EXPECT_GE(v, 0);
      EXPECT_LT(v, a.n);
    }
  }
  // Seeded families actually vary with the seed.
  EXPECT_NE(make_graph(GraphFamily::Expander, 40, 1).edges,
            make_graph(GraphFamily::Expander, 40, 2).edges);
}

TEST(Inputs, ReferenceComponentsOnKnownGraphs) {
  // Path: one component labelled 0.
  const GraphInput path = make_graph(GraphFamily::Path, 6, 1);
  EXPECT_EQ(reference_components(path), std::vector<i64>(6, 0));
  // Two disjoint edges + isolated vertex.
  GraphInput g;
  g.n = 5;
  g.edges = {{3, 4}, {0, 1}};
  EXPECT_EQ(reference_components(g), (std::vector<i64>{0, 0, 2, 3, 3}));
}

TEST(Inputs, PartitionAndListGeneratorsAreWellFormed) {
  const PartitionInput p = make_partition(30, 5, 11);
  EXPECT_EQ(p.n, 30);
  ASSERT_EQ(p.succ.size(), 30u);
  for (const i64 s : p.succ) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 30);
  }
  EXPECT_EQ(p.succ, make_partition(30, 5, 11).succ);
  EXPECT_EQ(p.block, make_partition(30, 5, 11).block);

  const std::vector<i64> succ = random_list(25, 3);
  EXPECT_EQ(std::count(succ.begin(), succ.end(), -1), 1);  // exactly one tail
  std::set<i64> targets;
  for (const i64 s : succ) {
    if (s >= 0) EXPECT_TRUE(targets.insert(s).second);  // a real chain
  }
}

TEST(Inputs, ReferenceRefinementFixpointSplitsBysuccessorBlock) {
  // succ forms two 2-cycles; one initial block => refinement separates the
  // cycles only if their signatures ever differ — here they don't, so one
  // block stays. Adding a distinguishing initial label splits them.
  PartitionInput p;
  p.n = 4;
  p.succ = {1, 0, 3, 2};
  p.block = {9, 9, 9, 9};
  EXPECT_EQ(reference_refinement(p), std::vector<i64>(4, 0));
  p.block = {9, 9, 9, 4};
  const std::vector<i64> r = reference_refinement(p);
  // 3 was marked distinct, so 2 (whose successor is 3) splits off too; 0
  // and 1 keep matching signatures and stay together.
  EXPECT_EQ(r, (std::vector<i64>{0, 0, 2, 3}));
}

// ---------------------------------------------------------------------------
// CRCW programs on the ideal machine (through CombiningBackend).

TEST(ConnectedComponents, MatchesUnionFindAcrossFamiliesAndSeeds) {
  for (const GraphFamily family :
       {GraphFamily::Path, GraphFamily::Star, GraphFamily::Grid,
        GraphFamily::Expander, GraphFamily::RandomForest}) {
    for (const u64 seed : {1u, 2u, 3u}) {
      for (const i64 n : {1, 2, 9, 32}) {
        const GraphInput g = make_graph(family, n, seed);
        ConnectedComponentsProgram prog(g);
        IdealBackend ideal(std::max(n, static_cast<i64>(g.edges.size())),
                           prog.vars_needed());
        CombiningBackend crcw(ideal);
        run_program(prog, crcw);
        EXPECT_EQ(prog.labels(), reference_components(g))
            << graph_family_name(family) << " n=" << n << " seed=" << seed;
      }
    }
  }
}

TEST(ConnectedComponents, StarHookingIsCombinedNotSerialized) {
  const GraphInput g = make_graph(GraphFamily::Star, 32, 1);
  ConnectedComponentsProgram prog(g);
  IdealBackend ideal(std::max<i64>(32, static_cast<i64>(g.edges.size())),
                     prog.vars_needed());
  CombiningBackend crcw(ideal);
  run_program(prog, crcw);
  // All 31 leaf edges hook onto the centre's parent cell concurrently; the
  // adapter must have combined groups (reads of the centre's parent at
  // minimum), and the ideal EREW backend underneath never saw a duplicate.
  EXPECT_GT(crcw.combined_groups(), 0);
  EXPECT_EQ(prog.labels(), std::vector<i64>(32, 0));
}

TEST(PartitionRefinement, MatchesHostFixpointAcrossSeeds) {
  for (const u64 seed : {1u, 5u, 9u}) {
    for (const i64 n : {1, 2, 7, 24}) {
      const PartitionInput in = make_partition(n, std::max<i64>(2, n / 4), seed);
      PartitionRefinementProgram prog(in);
      IdealBackend ideal(n, prog.vars_needed());
      CombiningBackend crcw(ideal);
      run_program(prog, crcw);
      EXPECT_EQ(prog.blocks(), reference_refinement(in))
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(PartitionRefinement, ArbitraryInitialLabelsAreCanonicalized) {
  PartitionInput in;
  in.n = 4;
  in.succ = {0, 1, 2, 3};           // fixpoints: nothing ever splits
  in.block = {700, -3, 700, 41};    // arbitrary labels, same partition as...
  PartitionRefinementProgram prog(in);
  IdealBackend ideal(4, prog.vars_needed());
  CombiningBackend crcw(ideal);
  run_program(prog, crcw);
  EXPECT_EQ(prog.blocks(), (std::vector<i64>{0, 1, 0, 3}));
  EXPECT_EQ(prog.blocks(), reference_refinement(in));
}

// ---------------------------------------------------------------------------
// New staple programs.

TEST(BlellochScan, MatchesHillisSteeleAcrossSizes) {
  for (const i64 n : {1, 2, 3, 5, 8, 17, 32, 50}) {
    const std::vector<i64> input = random_values(n, 21 + static_cast<u64>(n),
                                                 -50, 50);
    BlellochScanProgram prog(input);
    IdealBackend ideal(prog.processors(), 2 * prog.processors() + 4);
    run_program(prog, ideal);
    EXPECT_EQ(prog.result(), PrefixSumProgram::expected(input)) << "n=" << n;
  }
}

TEST(BitonicSort, SortsPowerOfTwoInputsAndRejectsOthers) {
  for (const i64 n : {1, 2, 4, 16, 64}) {
    std::vector<i64> input = random_values(n, 33 + static_cast<u64>(n), -99, 99);
    BitonicSortProgram prog(input);
    IdealBackend ideal(n, n + 4);
    run_program(prog, ideal);
    std::sort(input.begin(), input.end());
    EXPECT_EQ(prog.result(), input) << "n=" << n;
  }
  EXPECT_THROW(BitonicSortProgram(std::vector<i64>(12, 0)), ConfigError);
}

// ---------------------------------------------------------------------------
// Workload registry + harness oracle protocol.

TEST(Workloads, RegistryBuildsEveryNameAndRejectsUnknown) {
  for (const std::string& name : workload_names()) {
    const auto w = make_workload(name, 16, 1);
    EXPECT_EQ(w->name(), name);
    EXPECT_GT(w->processors_needed(), 0);
    EXPECT_GT(w->vars_needed(), 0);
  }
  EXPECT_THROW(make_workload("nope", 16, 1), ConfigError);
}

TEST(Workloads, FittingShrinksToTheBudgetOrThrows) {
  // refine needs n^2 + n + 1 vars: n=32 wants 1057 <= 1080 (fits), but a
  // 200-var budget forces it down to n=13 (183 vars).
  const auto big = make_workload_fitting("refine", 32, 64, 1080, 1);
  EXPECT_EQ(big->size(), 32);
  const auto small = make_workload_fitting("refine", 32, 64, 200, 1);
  EXPECT_LE(small->vars_needed(), 200);
  EXPECT_LT(small->size(), 32);
  EXPECT_THROW(make_workload_fitting("refine", 32, 64, 3, 1), ConfigError);
}

TEST(Harness, EveryWorkloadPassesTheOracleOnEveryBackend) {
  const WorkloadHarness harness(tiny_config());
  for (const std::string& name : workload_names()) {
    const auto w = make_workload_fitting(name, 24, 64, 1080, 2026);
    for (const BackendKind kind : all_backend_kinds()) {
      const HarnessResult r = harness.run(*w, kind);  // throws on mismatch
      EXPECT_EQ(r.workload, name);
      EXPECT_EQ(r.backend, backend_kind_name(kind));
      EXPECT_GT(r.pram_steps, 0);
      EXPECT_GT(r.backend_steps, 0);
      // EREW programs reach the backend unchanged; CRCW steps expand to at
      // most two EREW steps (and idle phases to zero).
      if (!w->crcw()) EXPECT_EQ(r.backend_steps, r.pram_steps);
      else EXPECT_LE(r.backend_steps, 2 * r.pram_steps);
      EXPECT_GT(r.stream.accesses, 0);
      if (kind == BackendKind::Ideal) {
        EXPECT_TRUE(r.zero_cost_backend);
        EXPECT_EQ(r.mesh_steps, 0);
      } else {
        EXPECT_FALSE(r.zero_cost_backend);
        EXPECT_GT(r.mesh_steps, 0) << name << " on "
                                   << backend_kind_name(kind);
      }
      if (w->crcw()) {
        EXPECT_GT(r.combined_groups, 0) << name;
        EXPECT_GT(r.stream.max_concurrency, 1) << name;
      }
    }
  }
}

TEST(Harness, CcRunsAreBitIdenticalAcrossThreadsAndNodeOrders) {
  // Mesh runs of a CRCW workload must not depend on host threading or the
  // physical layout — same discipline tests/test_layout.cpp enforces for
  // the raw simulator, now through the whole algo stack.
  struct Restore {
    ~Restore() {
      set_node_order_override(std::nullopt);
      set_execution_threads(0);
    }
  } restore;
  const WorkloadHarness harness(tiny_config());
  const auto w = make_workload("cc:expander", 24, 5);

  set_node_order_override(NodeOrderKind::RowMajor);
  set_execution_threads(1);
  const HarnessResult base = harness.run(*w, BackendKind::Mesh);

  const int hw =
      static_cast<int>(std::max(2u, std::thread::hardware_concurrency()));
  for (const int threads : {2, hw}) {
    for (const NodeOrderKind order :
         {NodeOrderKind::RowMajor, NodeOrderKind::Hilbert}) {
      set_node_order_override(order);
      set_execution_threads(threads);
      const HarnessResult r = harness.run(*w, BackendKind::Mesh);
      const std::string what = std::string(node_order_name(order)) +
                               " threads=" + std::to_string(threads);
      EXPECT_EQ(r.mesh_steps, base.mesh_steps) << what;
      EXPECT_EQ(r.pram_steps, base.pram_steps) << what;
      EXPECT_EQ(r.backend_steps, base.backend_steps) << what;
      EXPECT_EQ(r.combined_groups, base.combined_groups) << what;
    }
  }
}

TEST(Harness, StreamStatsSeeRawConcurrency) {
  // A CRCW star run observed above the combining layer: the hook phase has
  // every leaf edge racing one cell, so max_concurrency ~ leaf count while
  // the backend underneath only ever saw exclusive steps.
  const WorkloadHarness harness(tiny_config());
  const auto w = make_workload("cc:star", 24, 1);
  const HarnessResult r = harness.run(*w, BackendKind::Ideal);
  EXPECT_GE(r.stream.max_concurrency, 20);
  EXPECT_GT(r.stream.hot_var_accesses, r.stream.accesses / (24 * 4));
  EXPECT_GT(r.stream.reads, 0);
  EXPECT_GT(r.stream.writes, 0);
  EXPECT_GT(r.stream.distinct_vars, 0);
  EXPECT_GE(r.stream.reuse_factor(), 1.0);
}

TEST(Harness, MpcBackendChargesContention) {
  const WorkloadHarness harness(tiny_config());
  const auto w = make_workload("prefix", 32, 1);
  const HarnessResult r = harness.run(*w, BackendKind::Mpc);
  EXPECT_GT(r.mesh_steps, 0);  // majority quorums are never free
  EXPECT_GE(r.mesh_steps, r.backend_steps);  // >= 1 contention per step
}

// ---------------------------------------------------------------------------
// EREW trace recording + the loadgen scenario plumbing.

TEST(Trace, RecordedStepsAreErewAndFitTheShape) {
  const i64 processors = 64, num_vars = 512;
  for (const std::string& name : {std::string("cc:grid"), std::string("scan")}) {
    const auto w = make_workload_fitting(name, 24, processors, num_vars, 3);
    const auto trace =
        WorkloadHarness::record_erew_trace(*w, processors, num_vars);
    ASSERT_FALSE(trace.empty()) << name;
    for (const auto& step : trace) {
      EXPECT_FALSE(step.empty());
      EXPECT_LE(static_cast<i64>(step.size()), processors);
      std::set<i64> vars;
      for (const AccessRequest& req : step) {
        EXPECT_GE(req.var, 0);
        EXPECT_LT(req.var, num_vars);
        EXPECT_TRUE(vars.insert(req.var).second)
            << name << ": EREW violation on var " << req.var;
      }
    }
  }
}

TEST(Loadgen, TraceScenarioKeepsArrivalsAndSessionsOfRandomScenario) {
  using namespace meshpram::serve;
  const std::vector<SessionShape> shapes = {{64, 512}, {64, 512}};
  LoadgenConfig random_cfg;
  random_cfg.requests = 40;
  random_cfg.seed = 9;
  const auto random_reqs = generate_workload(random_cfg, shapes);

  const auto w = make_workload_fitting("cc:grid", 24, 64, 512, 3);
  LoadgenConfig traced_cfg = random_cfg;
  traced_cfg.scenario = "algo:cc:grid";
  traced_cfg.trace = WorkloadHarness::record_erew_trace(*w, 64, 512);
  const auto traced_reqs = generate_workload(traced_cfg, shapes);

  ASSERT_EQ(random_reqs.size(), traced_reqs.size());
  std::vector<size_t> cursor(shapes.size(), 0);
  for (size_t i = 0; i < random_reqs.size(); ++i) {
    // Same rng draws for the envelope: arrival process and session choice
    // are untouched by installing a trace.
    EXPECT_EQ(traced_reqs[i].arrival_slice, random_reqs[i].arrival_slice);
    EXPECT_EQ(traced_reqs[i].session_index, random_reqs[i].session_index);
    // Body comes from the trace, cycling per session.
    const auto s = static_cast<size_t>(traced_reqs[i].session_index);
    const auto& expect =
        traced_cfg.trace[cursor[s]++ % traced_cfg.trace.size()];
    ASSERT_EQ(traced_reqs[i].accesses.size(), expect.size());
    for (size_t a = 0; a < expect.size(); ++a) {
      EXPECT_EQ(traced_reqs[i].accesses[a].var, expect[a].var);
      EXPECT_EQ(traced_reqs[i].accesses[a].op, expect[a].op);
      EXPECT_EQ(traced_reqs[i].accesses[a].value, expect[a].value);
    }
  }
}

TEST(Loadgen, TraceThatDoesNotFitTheShapeIsRejected) {
  using namespace meshpram::serve;
  const std::vector<SessionShape> shapes = {{4, 16}};
  LoadgenConfig cfg;
  cfg.requests = 2;
  cfg.trace = {{{20, Op::Read, 0}}};  // var 20 out of range for 16 vars
  EXPECT_THROW(generate_workload(cfg, shapes), ConfigError);
  cfg.trace = {std::vector<AccessRequest>(5, {1, Op::Read, 0})};  // 5 > 4
  // 5 accesses exceed the 4-processor shape (duplicate vars never reach the
  // session; the size check fires first).
  EXPECT_THROW(generate_workload(cfg, shapes), ConfigError);
}

}  // namespace
}  // namespace meshpram::algo
