// Network serving + coalescing tests (DESIGN.md §14): the grouped-step
// bit-identity contract, the coalesce planner, scheduler coalescing with the
// shadow-replay tripwire, the epoll NetServer end-to-end over unix/TCP
// (pipelining, backpressure parking, admission rejections, protocol-abuse
// resilience), and the net loadgen.
//
// Single-threaded tests drive the server with poll_once() from the test
// thread, which makes socket scenarios deterministic; the concurrent tests
// (label also runs under tsan-serve-net) run the loop on its own thread with
// >= 4 client threads.
#include <gtest/gtest.h>
#include <pthread.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "serve/api.hpp"
#include "serve/coalesce.hpp"
#include "serve/loadgen.hpp"
#include "serve/manager.hpp"
#include "serve/net_client.hpp"
#include "serve/net_server.hpp"
#include "serve/scheduler.hpp"
#include "serve/snapshot.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram::serve {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.mesh_rows = 8;
  cfg.mesh_cols = 8;
  cfg.num_vars = 1080;
  cfg.q = 3;
  cfg.k = 2;
  return cfg;
}

/// Request j in a var-disjoint series: accesses vars [j*w, j*w + w), writes
/// at even slots — consecutive requests always coalesce (until capacity).
Request disjoint_request(u64 id, i64 j, i64 w = 8) {
  Request req;
  req.accesses.reserve(static_cast<size_t>(w));
  for (i64 i = 0; i < w; ++i) {
    AccessRequest a;
    a.var = j * w + i;
    if (i % 2 == 0) {
      a.op = Op::Write;
      a.value = static_cast<i64>(id) * 1000 + i;
    }
    req.accesses.push_back(a);
  }
  req.id = id;
  return req;
}

/// A config with live faults: such sessions must never coalesce.
SimConfig faulty_config() {
  fault::FaultSpec spec;
  spec.seed = 7;
  spec.node_rate = 0.03;
  spec.link_rate = 0.03;
  SimConfig cfg = small_config();
  cfg.fault_plan = fault::FaultPlan::random(8, 8, spec);
  cfg.fault_policy = FaultPolicy::Degrade;
  return cfg;
}

/// Read-back request over the same var block (all reads).
Request readback_request(u64 id, i64 j, i64 w = 8) {
  Request req = disjoint_request(id, j, w);
  for (AccessRequest& a : req.accesses) {
    a.op = Op::Read;
    a.value = 0;
  }
  return req;
}

struct CollectSink {
  std::map<u64, Response> done;
  void install(FairScheduler& sched) {
    sched.set_completion_sink(
        [this](Response&& r) { done[r.id] = std::move(r); });
  }
};

void expect_stats_equal(const StepStats& a, const StepStats& b) {
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.culling_steps, b.culling_steps);
  EXPECT_EQ(a.forward_steps, b.forward_steps);
  EXPECT_EQ(a.return_steps, b.return_steps);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.forward_stage_steps, b.forward_stage_steps);
}

std::string unique_sock_path(const std::string& tag) {
  return "/tmp/meshpram-test-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

/// Pumps the server loop until the client has a response (deterministic
/// single-threaded drive).
WireResponse pump_recv(NetServer& server, NetClient& client) {
  for (int round = 0; round < 10000; ++round) {
    server.poll_once(0);
    if (std::optional<WireResponse> r = client.try_recv()) return *r;
  }
  throw ConfigError("pump_recv: no response after 10000 server rounds");
}

// ---------------------------------------------------------------------------
// Grouped steps: the bit-identity contract at the simulator level.
// ---------------------------------------------------------------------------

TEST(StepGrouped, BitIdenticalToSequentialSteps) {
  const SimConfig cfg = small_config();
  PramMeshSimulator grouped(cfg);
  PramMeshSimulator sequential(cfg);

  const Request g0 = disjoint_request(1, 0);
  const Request g1 = disjoint_request(2, 1);
  const Request g2 = disjoint_request(3, 2);
  StepStats st;
  const std::vector<i64> merged = grouped.step_grouped(
      {&g0.accesses, &g1.accesses, &g2.accesses}, &st);
  EXPECT_GT(st.total_steps, 0);

  std::vector<std::vector<i64>> solo;
  for (const Request* r : {&g0, &g1, &g2}) {
    solo.push_back(sequential.step(r->accesses, nullptr));
  }
  size_t offset = 0;
  for (size_t g = 0; g < solo.size(); ++g) {
    for (size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(merged[offset + i], solo[g][i]) << "group " << g << " slot "
                                                << i;
    }
    offset += 8;
  }
  EXPECT_EQ(grouped.now(), sequential.now());
  EXPECT_EQ(snapshot_simulator(grouped), snapshot_simulator(sequential));

  // Read-backs across a second grouped pass see the grouped writes with the
  // sequential timestamps.
  const Request r0 = readback_request(4, 0);
  const Request r1 = readback_request(5, 1);
  const std::vector<i64> reads =
      grouped.step_grouped({&r0.accesses, &r1.accesses}, nullptr);
  const std::vector<i64> reads0 = sequential.step(r0.accesses, nullptr);
  const std::vector<i64> reads1 = sequential.step(r1.accesses, nullptr);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(reads[i], reads0[i]);
    EXPECT_EQ(reads[8 + i], reads1[i]);
  }
  EXPECT_EQ(snapshot_simulator(grouped), snapshot_simulator(sequential));
}

TEST(StepGrouped, RejectsOverlapOverflowAndFaultPlans) {
  PramMeshSimulator sim(small_config());
  const Request a = disjoint_request(1, 0);
  EXPECT_THROW(sim.step_grouped({&a.accesses, &a.accesses}, nullptr),
               ConfigError);  // EREW across the union

  const Request big = disjoint_request(2, 1, 60);
  EXPECT_THROW(sim.step_grouped({&a.accesses, &big.accesses}, nullptr),
               ConfigError);  // 68 accesses > 64 processors

  PramMeshSimulator fsim(faulty_config());
  ASSERT_NE(fsim.fault_plan(), nullptr);
  const Request b = disjoint_request(3, 2);
  EXPECT_THROW(fsim.step_grouped({&b.accesses}, nullptr), ConfigError);
}

// ---------------------------------------------------------------------------
// Coalesce planner.
// ---------------------------------------------------------------------------

TEST(CoalescePlanner, MergesDisjointPrefixUpToWindowAndCapacity) {
  std::deque<Request> q;
  for (i64 j = 0; j < 12; ++j) q.push_back(disjoint_request(100 + j, j));
  // Window limits first: 12 disjoint requests, window 4.
  CoalescePlan plan = plan_coalesce(q, 4, 64, 1080);
  EXPECT_EQ(plan.count, 4);
  EXPECT_EQ(plan.total_accesses, 32);
  // Capacity limits next: window 12 but 8 * 8 = 64 processors.
  plan = plan_coalesce(q, 12, 64, 1080);
  EXPECT_EQ(plan.count, 8);
  EXPECT_EQ(plan.total_accesses, 64);
  // Window 1 = off.
  plan = plan_coalesce(q, 1, 64, 1080);
  EXPECT_EQ(plan.count, 1);
}

TEST(CoalescePlanner, ConflictAndDirtyRequestsStopTheBatch) {
  std::deque<Request> q;
  q.push_back(disjoint_request(1, 0));
  q.push_back(disjoint_request(2, 1));
  q.push_back(disjoint_request(3, 0));  // re-uses block 0: conflicts
  q.push_back(disjoint_request(4, 2));
  EXPECT_EQ(plan_coalesce(q, 8, 64, 1080).count, 2);

  // A request that would fail alone (var out of range) runs alone...
  std::deque<Request> bad;
  Request oob = disjoint_request(1, 0);
  oob.accesses[3].var = 5000;
  bad.push_back(oob);
  bad.push_back(disjoint_request(2, 1));
  EXPECT_EQ(plan_coalesce(bad, 8, 64, 1080).count, 1);

  // ...and never joins a batch started by clean requests.
  std::deque<Request> mixed;
  mixed.push_back(disjoint_request(1, 1));
  Request dup = disjoint_request(2, 2);
  dup.accesses[1].var = dup.accesses[0].var;  // internal EREW violation
  mixed.push_back(dup);
  mixed.push_back(disjoint_request(3, 3));
  EXPECT_EQ(plan_coalesce(mixed, 8, 64, 1080).count, 1);
}

// ---------------------------------------------------------------------------
// Scheduler coalescing: bit-identity + tripwire.
// ---------------------------------------------------------------------------

struct SchedulerRun {
  std::map<u64, Response> done;
  std::string core_snapshot;
  StepStats probe;
  CoalesceStats cstats;
};

TEST(Coalescing, WindowedRunBitIdenticalToSequentialAcrossThreadCounts) {
  auto run = [](i64 window, int threads, bool validate) {
    SchedulerRun out;
    SessionManager mgr;
    Session& s = mgr.create("c", small_config());
    SchedulerConfig scfg;
    scfg.threads = threads;
    scfg.coalesce_window = window;
    scfg.validate_coalescing = validate;
    FairScheduler sched(mgr, scfg);
    CollectSink sink;
    sink.install(sched);

    // 6 disjoint writes, 2 conflicting (re-used block), 6 read-backs.
    u64 id = 1;
    for (i64 j = 0; j < 6; ++j) {
      EXPECT_TRUE(sched.submit(s.id(), disjoint_request(id++, j)).accepted);
    }
    EXPECT_TRUE(sched.submit(s.id(), disjoint_request(id++, 0)).accepted);
    EXPECT_TRUE(sched.submit(s.id(), disjoint_request(id++, 1)).accepted);
    for (i64 j = 0; j < 6; ++j) {
      EXPECT_TRUE(sched.submit(s.id(), readback_request(id++, j)).accepted);
    }
    sched.run_until_idle();
    out.done = std::move(sink.done);
    out.core_snapshot = snapshot_simulator(s.sim());
    out.cstats = sched.coalesce_stats();
    const Request probe = readback_request(99, 3);
    s.sim().step(probe.accesses, &out.probe);
    return out;
  };

  const SchedulerRun sequential = run(1, 0, false);
  EXPECT_EQ(sequential.cstats.batches, 0);
  for (const auto& [window, threads] :
       std::vector<std::pair<i64, int>>{{8, 0}, {8, 3}, {3, 2}}) {
    const SchedulerRun coalesced = run(window, threads, true);
    EXPECT_GT(coalesced.cstats.batches, 0);
    EXPECT_GT(coalesced.cstats.validations, 0);  // tripwire exercised
    ASSERT_EQ(coalesced.done.size(), sequential.done.size());
    for (const auto& [id, resp] : sequential.done) {
      const auto it = coalesced.done.find(id);
      ASSERT_NE(it, coalesced.done.end());
      EXPECT_TRUE(it->second.ok);
      EXPECT_EQ(it->second.values, resp.values) << "request " << id;
    }
    // Machine state byte-identical; probe step costs identical.
    EXPECT_EQ(coalesced.core_snapshot, sequential.core_snapshot)
        << "window " << window << " threads " << threads;
    expect_stats_equal(coalesced.probe, sequential.probe);
  }
}

TEST(Coalescing, CoalescedCostIsMeasurablySmaller) {
  auto mesh_steps = [](i64 window) {
    SessionManager mgr;
    Session& s = mgr.create("c", small_config());
    SchedulerConfig scfg;
    scfg.coalesce_window = window;
    FairScheduler sched(mgr, scfg);
    for (i64 j = 0; j < 8; ++j) {
      sched.submit(s.id(), disjoint_request(static_cast<u64>(j + 1), j));
    }
    sched.run_until_idle();
    return s.stats().mesh_steps;
  };
  const i64 solo = mesh_steps(1);
  const i64 merged = mesh_steps(8);
  EXPECT_LT(merged * 2, solo);  // one pass instead of eight
}

TEST(Coalescing, FaultPlanSessionsNeverCoalesce) {
  SessionManager mgr;
  Session& s = mgr.create("f", faulty_config());
  EXPECT_FALSE(s.supports_coalescing());
  SchedulerConfig scfg;
  scfg.coalesce_window = 8;
  FairScheduler sched(mgr, scfg);
  CollectSink sink;
  sink.install(sched);
  for (i64 j = 0; j < 4; ++j) {
    sched.submit(s.id(), disjoint_request(static_cast<u64>(j + 1), j));
  }
  sched.run_until_idle();
  EXPECT_EQ(sched.coalesce_stats().batches, 0);
  for (const auto& [id, resp] : sink.done) EXPECT_EQ(resp.coalesced, 1);
}

// ---------------------------------------------------------------------------
// FrameBuffer.
// ---------------------------------------------------------------------------

TEST(FrameBufferTest, ReassemblesAcrossArbitrarySplits) {
  const std::string f1 = encode_batch_read(1, "a", {1, 2, 3});
  const std::string f2 = encode_control(MsgType::Stats, 2, "a");
  const std::string stream = f1 + f2;
  for (size_t split = 0; split <= stream.size(); ++split) {
    FrameBuffer buf;
    buf.append(stream.data(), split);
    std::vector<std::string> got;
    if (auto p = buf.next_payload()) got.push_back(*p);
    buf.append(stream.data() + split, stream.size() - split);
    while (auto p = buf.next_payload()) got.push_back(*p);
    ASSERT_EQ(got.size(), 2u) << "split at " << split;
    EXPECT_EQ(got[0], f1.substr(4));
    EXPECT_EQ(got[1], f2.substr(4));
    EXPECT_EQ(buf.buffered(), 0);
  }
}

TEST(FrameBufferTest, OversizedPrefixThrows) {
  FrameBuffer buf;
  const char huge[4] = {'\xff', '\xff', '\xff', '\x7f'};  // ~2 GiB
  buf.append(huge, 4);
  EXPECT_THROW(buf.next_payload(), ConfigError);
}

// ---------------------------------------------------------------------------
// NetServer end-to-end (single-threaded deterministic drive).
// ---------------------------------------------------------------------------

struct Stack {
  SessionManager mgr;
  std::unique_ptr<FairScheduler> sched;
  std::unique_ptr<NetServer> server;

  explicit Stack(const NetServerConfig& ncfg, SchedulerConfig scfg = {},
                 SessionLimits limits = {}, int sessions = 1) {
    for (int i = 0; i < sessions; ++i) {
      mgr.create("s" + std::to_string(i), small_config(), limits);
    }
    sched = std::make_unique<FairScheduler>(mgr, scfg);
    server = std::make_unique<NetServer>(mgr, *sched, ncfg);
  }
};

TEST(NetServerTest, UnixEndToEndWriteReadSnapshotStats) {
  NetServerConfig ncfg;
  ncfg.unix_path = unique_sock_path("e2e");
  Stack stack(ncfg);
  NetClient client = NetClient::connect_unix(ncfg.unix_path);

  const std::vector<i64> vars{10, 20, 30};
  client.send_frame(encode_batch_write(1, "s0", vars, {7, 8, 9}));
  WireResponse w = pump_recv(*stack.server, client);
  EXPECT_TRUE(w.ok);
  EXPECT_EQ(w.request_id, 1u);
  EXPECT_EQ(w.type, MsgType::BatchWrite);
  EXPECT_TRUE(w.values.empty());
  EXPECT_GT(w.mesh_steps, 0);
  EXPECT_EQ(w.coalesced, 1);

  client.send_frame(encode_batch_read(2, "s0", vars));
  WireResponse r = pump_recv(*stack.server, client);
  EXPECT_TRUE(r.ok);
  ASSERT_GE(r.values.size(), 3u);
  EXPECT_EQ(r.values[0], 7);
  EXPECT_EQ(r.values[1], 8);
  EXPECT_EQ(r.values[2], 9);

  client.send_frame(encode_control(MsgType::Snapshot, 3, "s0"));
  WireResponse snap = pump_recv(*stack.server, client);
  EXPECT_TRUE(snap.ok);
  EXPECT_FALSE(snap.snapshot_bytes.empty());
  const ParsedSnapshot parsed = parse_snapshot(snap.snapshot_bytes);
  EXPECT_TRUE(parsed.has_session);

  client.send_frame(encode_control(MsgType::Stats, 4, "s0"));
  WireResponse stats = pump_recv(*stack.server, client);
  EXPECT_TRUE(stats.ok);
  EXPECT_EQ(stats.stats.steps_executed, 2);

  client.send_frame(encode_batch_read(5, "nope", vars));
  WireResponse unknown = pump_recv(*stack.server, client);
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("unknown session"), std::string::npos);
  EXPECT_EQ(stack.server->stats().rejected, 1);
}

TEST(NetServerTest, TcpPipelinedResponsesInOrderAndCoalesced) {
  NetServerConfig ncfg;
  ncfg.tcp = true;
  SchedulerConfig scfg;
  scfg.coalesce_window = 8;
  Stack stack(ncfg, scfg);
  ASSERT_GT(stack.server->tcp_port(), 0);
  NetClient client = NetClient::connect_tcp("127.0.0.1",
                                            stack.server->tcp_port());

  const i64 total = 16;
  for (i64 j = 0; j < total; ++j) {
    const Request req = disjoint_request(static_cast<u64>(j + 1), j);
    client.send_frame(
        encode_step(req.id, "s0", req.accesses));
  }
  for (i64 j = 0; j < total; ++j) {
    const WireResponse resp = pump_recv(*stack.server, client);
    EXPECT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.request_id, static_cast<u64>(j + 1));  // FIFO order
    EXPECT_GT(resp.coalesced, 1) << "request " << j + 1;
  }
  EXPECT_GT(stack.sched->coalesce_stats().batches, 0);
  EXPECT_EQ(stack.sched->coalesce_stats().merged_requests, total);
}

TEST(NetServerTest, BackpressureParksInsteadOfRejecting) {
  NetServerConfig ncfg;
  ncfg.unix_path = unique_sock_path("bp");
  SessionLimits limits;
  limits.queue_capacity = 2;
  Stack stack(ncfg, {}, limits);
  NetClient client = NetClient::connect_unix(ncfg.unix_path);

  const i64 total = 10;
  for (i64 j = 0; j < total; ++j) {
    const Request req = disjoint_request(static_cast<u64>(j + 1), j);
    client.send_frame(encode_step(req.id, "s0", req.accesses));
  }
  for (i64 j = 0; j < total; ++j) {
    const WireResponse resp = pump_recv(*stack.server, client);
    EXPECT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.request_id, static_cast<u64>(j + 1));
  }
  EXPECT_GT(stack.server->stats().parked, 0);   // queue-full -> parked
  EXPECT_EQ(stack.server->stats().rejected, 0); // never rejected
  EXPECT_EQ(stack.mgr.find_by_name("s0")->stats().rejected, 0);
}

TEST(NetServerTest, GlobalBudgetOverloadRejects) {
  NetServerConfig ncfg;
  ncfg.unix_path = unique_sock_path("ovl");
  SchedulerConfig scfg;
  scfg.global_inflight = 2;
  SessionLimits limits;
  limits.queue_capacity = 8;
  Stack stack(ncfg, scfg, limits);
  NetClient client = NetClient::connect_unix(ncfg.unix_path);

  const i64 total = 10;
  for (i64 j = 0; j < total; ++j) {
    const Request req = disjoint_request(static_cast<u64>(j + 1), j);
    client.send_frame(encode_step(req.id, "s0", req.accesses));
  }
  i64 completed = 0, rejected = 0;
  for (i64 j = 0; j < total; ++j) {
    const WireResponse resp = pump_recv(*stack.server, client);
    if (resp.ok) {
      ++completed;
    } else {
      ++rejected;
      EXPECT_NE(resp.error.find("global in-flight budget"),
                std::string::npos);
      EXPECT_EQ(resp.slice, -1);  // the existing rejection frame shape
    }
  }
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(rejected, 8);
  EXPECT_EQ(stack.server->stats().rejected, 8);
}

TEST(NetServerTest, RequestIdsAreConnectionLocal) {
  NetServerConfig ncfg;
  ncfg.unix_path = unique_sock_path("ids");
  Stack stack(ncfg, {}, {}, 2);
  NetClient a = NetClient::connect_unix(ncfg.unix_path);
  NetClient b = NetClient::connect_unix(ncfg.unix_path);

  // Both clients use request id 1 against different sessions.
  a.send_frame(encode_batch_write(1, "s0", {5}, {111}));
  b.send_frame(encode_batch_write(1, "s1", {5}, {222}));
  EXPECT_TRUE(pump_recv(*stack.server, a).ok);
  EXPECT_TRUE(pump_recv(*stack.server, b).ok);
  a.send_frame(encode_batch_read(1, "s0", {5}));
  b.send_frame(encode_batch_read(1, "s1", {5}));
  const WireResponse ra = pump_recv(*stack.server, a);
  const WireResponse rb = pump_recv(*stack.server, b);
  EXPECT_EQ(ra.request_id, 1u);
  EXPECT_EQ(rb.request_id, 1u);
  EXPECT_EQ(ra.values[0], 111);
  EXPECT_EQ(rb.values[0], 222);
}

// ---------------------------------------------------------------------------
// Protocol abuse: malformed streams must produce an error + close, never UB.
// ---------------------------------------------------------------------------

TEST(NetServerAbuse, GarbageOpcodeGetsErrorThenClose) {
  NetServerConfig ncfg;
  ncfg.unix_path = unique_sock_path("op");
  Stack stack(ncfg);
  NetClient client = NetClient::connect_unix(ncfg.unix_path);

  std::string frame = encode_batch_read(1, "s0", {1});
  frame[4] = '\x63';  // opcode 99
  client.send_raw(frame);
  const WireResponse err = pump_recv(*stack.server, client);
  EXPECT_FALSE(err.ok);
  EXPECT_NE(err.error.find("unknown message type"), std::string::npos);
  for (int i = 0; i < 100; ++i) stack.server->poll_once(0);
  EXPECT_THROW(client.recv_response(200), ConfigError);  // closed
  EXPECT_EQ(stack.server->stats().protocol_errors, 1);
  EXPECT_EQ(stack.server->open_connections(), 0);

  // The server is still healthy for new connections.
  NetClient fresh = NetClient::connect_unix(ncfg.unix_path);
  fresh.send_frame(encode_control(MsgType::Stats, 1, "s0"));
  EXPECT_TRUE(pump_recv(*stack.server, fresh).ok);
}

TEST(NetServerAbuse, OversizedLengthPrefixClosesConnection) {
  NetServerConfig ncfg;
  ncfg.unix_path = unique_sock_path("len");
  Stack stack(ncfg);
  NetClient client = NetClient::connect_unix(ncfg.unix_path);
  const char huge[8] = {'\xff', '\xff', '\xff', '\x7f', 'x', 'x', 'x', 'x'};
  client.send_raw(std::string_view(huge, sizeof(huge)));
  const WireResponse err = pump_recv(*stack.server, client);
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(stack.server->stats().protocol_errors, 1);
}

TEST(NetServerAbuse, TruncatedFrameThenDisconnectLeavesServerHealthy) {
  NetServerConfig ncfg;
  ncfg.unix_path = unique_sock_path("trunc");
  Stack stack(ncfg);
  {
    NetClient client = NetClient::connect_unix(ncfg.unix_path);
    const std::string frame = encode_batch_read(1, "s0", {1, 2, 3});
    client.send_raw(std::string_view(frame.data(), frame.size() - 5));
    for (int i = 0; i < 20; ++i) stack.server->poll_once(0);
    EXPECT_EQ(stack.server->open_connections(), 1);  // waiting for the rest
    client.close();  // disconnect mid-frame
  }
  for (int i = 0; i < 100; ++i) stack.server->poll_once(0);
  EXPECT_EQ(stack.server->open_connections(), 0);
  EXPECT_EQ(stack.server->stats().protocol_errors, 0);  // no bytes lied

  NetClient fresh = NetClient::connect_unix(ncfg.unix_path);
  fresh.send_frame(encode_batch_read(2, "s0", {1}));
  EXPECT_TRUE(pump_recv(*stack.server, fresh).ok);
}

TEST(NetServerAbuse, SeededFuzzBytesNeverCrashTheServer) {
  NetServerConfig ncfg;
  ncfg.unix_path = unique_sock_path("fuzz");
  Stack stack(ncfg);
  Rng rng(0xf22d);
  for (int round = 0; round < 40; ++round) {
    NetClient client = NetClient::connect_unix(ncfg.unix_path);
    std::string bytes(static_cast<size_t>(rng.below(512) + 1), '\0');
    for (char& c : bytes) {
      c = static_cast<char>(rng.below(256));
    }
    client.send_raw(bytes);
    client.shutdown_writes();
    for (int i = 0; i < 50; ++i) stack.server->poll_once(0);
    client.close();
    for (int i = 0; i < 10; ++i) stack.server->poll_once(0);
  }
  EXPECT_EQ(stack.server->open_connections(), 0);
  // Still serving after 40 hostile connections.
  NetClient fresh = NetClient::connect_unix(ncfg.unix_path);
  fresh.send_frame(encode_control(MsgType::Stats, 1, "s0"));
  EXPECT_TRUE(pump_recv(*stack.server, fresh).ok);
}

// ---------------------------------------------------------------------------
// Concurrent clients: coalesced sockets bit-identical to solo replay.
// Runs with >= 4 connections; also exercised under tsan-serve-net.
// ---------------------------------------------------------------------------

TEST(NetServerConcurrent, PipelinedClientsMatchSoloSequentialReplay) {
  const int kConns = 4;
  const i64 kRequests = 12;
  NetServerConfig ncfg;
  ncfg.unix_path = unique_sock_path("conc");
  SchedulerConfig scfg;
  scfg.coalesce_window = 8;
  scfg.validate_coalescing = true;  // shadow tripwire armed throughout
  Stack stack(ncfg, scfg, {}, kConns);

  std::atomic<bool> stop{false};
  std::thread loop([&] { stack.server->run(stop); });

  std::vector<std::map<u64, WireResponse>> got(kConns);
  std::vector<std::thread> clients;
  for (int c = 0; c < kConns; ++c) {
    clients.emplace_back([&, c] {
      NetClient client = NetClient::connect_unix(ncfg.unix_path);
      for (i64 j = 0; j < kRequests; ++j) {
        const Request req =
            disjoint_request(static_cast<u64>(j + 1), j + c * kRequests);
        client.send_frame(
            encode_step(req.id, "s" + std::to_string(c), req.accesses));
      }
      for (i64 j = 0; j < kRequests; ++j) {
        const WireResponse resp = client.recv_response();
        got[static_cast<size_t>(c)][resp.request_id] = resp;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop = true;
  loop.join();

  // Every session's state and responses must match a solo sequential run of
  // its connection's FIFO stream.
  for (int c = 0; c < kConns; ++c) {
    PramMeshSimulator solo(small_config());
    for (i64 j = 0; j < kRequests; ++j) {
      const Request req =
          disjoint_request(static_cast<u64>(j + 1), j + c * kRequests);
      const std::vector<i64> values = solo.step(req.accesses, nullptr);
      const auto it = got[static_cast<size_t>(c)].find(req.id);
      ASSERT_NE(it, got[static_cast<size_t>(c)].end());
      EXPECT_TRUE(it->second.ok) << it->second.error;
      for (size_t i = 0; i < req.accesses.size(); ++i) {
        EXPECT_EQ(it->second.values[i], values[i])
            << "conn " << c << " request " << req.id << " slot " << i;
      }
    }
    Session* s = stack.mgr.find_by_name("s" + std::to_string(c));
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(snapshot_simulator(s->sim()), snapshot_simulator(solo))
        << "conn " << c;
  }
  EXPECT_GT(stack.sched->coalesce_stats().batches, 0);
  EXPECT_GT(stack.sched->coalesce_stats().validations, 0);
}

// ---------------------------------------------------------------------------
// NetClient robustness: signal interrupts and connect retry.
// ---------------------------------------------------------------------------

/// Fires SIGUSR1 at `target` every ~3 ms until destroyed — every blocking
/// poll/recv on that thread keeps getting EINTR'd. The handler is installed
/// without SA_RESTART so syscalls genuinely fail with EINTR.
class SignalStorm {
 public:
  explicit SignalStorm(pthread_t target) : target_(target) {
    struct sigaction sa{};
    sa.sa_handler = [](int) {};
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART
    sigaction(SIGUSR1, &sa, &old_);
    thread_ = std::thread([this] {
      while (!stop_.load()) {
        pthread_kill(target_, SIGUSR1);
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
    });
  }
  ~SignalStorm() {
    stop_ = true;
    thread_.join();
    sigaction(SIGUSR1, &old_, nullptr);
  }

 private:
  pthread_t target_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  struct sigaction old_{};
};

TEST(NetClientRobust, EintrDoesNotTruncateRecvTimeout) {
  NetServerConfig ncfg;
  ncfg.unix_path = unique_sock_path("eintr-to");
  Stack stack(ncfg);
  NetClient client = NetClient::connect_unix(ncfg.unix_path);

  // No request sent, so no response ever comes: the recv must burn its whole
  // budget despite being interrupted every few ms, then time out. Before the
  // deadline-aware retry loop, the first EINTR fell into the timeout branch
  // and threw after only a few ms.
  SignalStorm storm(pthread_self());
  const auto t0 = std::chrono::steady_clock::now();
  try {
    client.recv_response(300);
    FAIL() << "expected a timeout";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 250);
}

TEST(NetClientRobust, EintrStormStillReceivesResponses) {
  NetServerConfig ncfg;
  ncfg.unix_path = unique_sock_path("eintr-rx");
  Stack stack(ncfg);
  std::atomic<bool> stop{false};
  std::thread loop([&] { stack.server->run(stop); });
  {
    NetClient client = NetClient::connect_unix(ncfg.unix_path);
    SignalStorm storm(pthread_self());
    for (u64 id = 1; id <= 20; ++id) {
      const Request req = disjoint_request(id, static_cast<i64>(id - 1));
      client.send_frame(encode_step(id, "s0", req.accesses));
      const WireResponse resp = client.recv_response(10000);
      EXPECT_TRUE(resp.ok) << resp.error;
      EXPECT_EQ(resp.request_id, id);
    }
  }
  stop = true;
  loop.join();
}

TEST(NetClientRobust, ConnectRetriesUntilServerBinds) {
  const std::string path = unique_sock_path("late-bind");
  ::unlink(path.c_str());
  // The server stack only comes up ~60 ms after the client starts dialing;
  // the retry loop must absorb the refused attempts.
  std::unique_ptr<Stack> stack;
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    NetServerConfig ncfg;
    ncfg.unix_path = path;
    stack = std::make_unique<Stack>(ncfg);
  });
  ConnectOptions opts;
  opts.attempts = 50;
  opts.backoff_ms = 10;
  NetClient client = NetClient::connect_unix(path, opts);
  late.join();
  EXPECT_TRUE(client.connected());
  EXPECT_GT(client.stats().connect_retries, 0);

  client.send_frame(encode_batch_write(1, "s0", {1}, {42}));
  const WireResponse resp = pump_recv(*stack->server, client);
  EXPECT_TRUE(resp.ok) << resp.error;
}

TEST(NetClientRobust, ConnectFailureReportsAttemptCount) {
  const std::string path = unique_sock_path("never-binds");
  ::unlink(path.c_str());
  ConnectOptions opts;
  opts.attempts = 3;
  opts.backoff_ms = 1;
  try {
    NetClient::connect_unix(path, opts);
    FAIL() << "expected connect to fail";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("after 3 attempt"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Net loadgen.
// ---------------------------------------------------------------------------

TEST(NetLoadgen, UnixRunAccountsEveryRequest) {
  const int kSessions = 3;
  NetServerConfig ncfg;
  ncfg.unix_path = unique_sock_path("lg");
  SchedulerConfig scfg;
  scfg.coalesce_window = 4;
  Stack stack(ncfg, scfg, {}, kSessions);

  std::vector<std::string> names;
  std::vector<SessionShape> shapes;
  for (Session* s : stack.mgr.sessions()) {
    names.push_back(s->name());
    shapes.push_back({s->sim().processors(), s->sim().num_vars()});
  }
  LoadgenConfig lg;
  lg.requests = 60;
  lg.accesses_per_request = 8;
  lg.seed = 7;

  NetEndpoint ep;
  ep.transport = Transport::Unix;
  ep.unix_path = ncfg.unix_path;
  std::atomic<bool> stop{false};
  std::thread loop([&] { stack.server->run(stop); });
  const NetLoadgenReport rep = run_loadgen_net(ep, names, shapes, lg, 6);
  stop = true;
  loop.join();

  EXPECT_EQ(rep.offered, 60);
  EXPECT_EQ(rep.completed + rep.rejected + rep.failed, rep.offered);
  EXPECT_EQ(rep.failed, 0);
  ASSERT_EQ(rep.conns.size(), static_cast<size_t>(kSessions));
  i64 sum = 0;
  for (const ConnReport& c : rep.conns) {
    EXPECT_TRUE(c.error.empty());
    EXPECT_EQ(c.completed + c.rejected + c.failed, c.offered);
    EXPECT_GT(c.bytes_out, 0);
    sum += c.offered;
  }
  EXPECT_EQ(sum, rep.offered);
  EXPECT_EQ(stack.server->stats().frames_in,
            stack.server->stats().frames_out);
}

}  // namespace
}  // namespace meshpram::serve
