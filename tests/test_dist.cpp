// Distributed mesh subsystem (src/dist): rank partition legality, transport
// and collectives semantics, and the load-bearing guarantee — a DistMachine
// at any rank count is bit-identical to the single-process simulator
// (results, StepStats, congestion counters) on the same workload.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "dist/channel.hpp"
#include "dist/collectives.hpp"
#include "dist/machine.hpp"
#include "dist/partition.hpp"
#include "dist/serve.hpp"
#include "dist/wire.hpp"
#include "fault/plan.hpp"
#include "serve/snapshot.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram::dist {
namespace {

SimConfig mid_mem_config(int side, int k = 3) {
  const i64 n = static_cast<i64>(side) * side;
  SimConfig cfg;
  cfg.mesh_rows = side;
  cfg.mesh_cols = side;
  cfg.num_vars = static_cast<i64>(std::llround(std::pow(
      static_cast<double>(n), 1.5)));
  cfg.q = 3;
  cfg.k = k;
  cfg.sort_mode = SortMode::Analytic;
  cfg.fault_plan_from_env = false;
  return cfg;
}

/// Random EREW request set (distinct vars via partial Fisher-Yates).
std::vector<AccessRequest> random_requests(i64 n, i64 num_vars, Rng& rng,
                                           Op op = Op::Read) {
  std::vector<i64> pool(static_cast<size_t>(std::min(num_vars, 4 * n)));
  std::iota(pool.begin(), pool.end(), i64{0});
  std::vector<AccessRequest> reqs(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const i64 j = rng.range(i, static_cast<i64>(pool.size()) - 1);
    std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
    reqs[static_cast<size_t>(i)] = {pool[static_cast<size_t>(i)], op,
                                    op == Op::Write ? i + 100 : 0};
  }
  return reqs;
}

/// Smallest side from {16, 32, 64} whose HMOS geometry admits >= want ranks.
int pick_side(int want, int k = 3) {
  for (const int side : {16, 32, 64}) {
    if (DistMachine::max_ranks(mid_mem_config(side, k)) >= want) return side;
  }
  return 0;
}

void expect_stats_eq(const StepStats& a, const StepStats& b) {
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.culling_steps, b.culling_steps);
  EXPECT_EQ(a.forward_steps, b.forward_steps);
  EXPECT_EQ(a.return_steps, b.return_steps);
  EXPECT_EQ(a.forward_stage_steps, b.forward_stage_steps);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.fault.copies_lost, b.fault.copies_lost);
  EXPECT_EQ(a.fault.requests_failed, b.fault.requests_failed);
  EXPECT_EQ(a.fault.requests_degraded, b.fault.requests_degraded);
  EXPECT_EQ(a.fault.packets_retried, b.fault.packets_retried);
  EXPECT_EQ(a.fault.packets_dropped, b.fault.packets_dropped);
  EXPECT_EQ(a.fault.packets_detoured, b.fault.packets_detoured);
  EXPECT_EQ(a.request_ok, b.request_ok);
}

TEST(DistPartition, BandsCoverAndAgree) {
  const SimConfig cfg = mid_mem_config(32);
  PramMeshSimulator sim(cfg);
  const int max = RankPartition::max_ranks(sim.placement(), cfg.mesh_rows);
  ASSERT_GE(max, 2) << "32x32 k=3 geometry should admit multiple ranks";

  for (const int ranks : {1, 2, max}) {
    RankPartition part(sim.placement(), cfg.mesh_rows, cfg.mesh_cols, ranks);
    EXPECT_EQ(part.ranks(), ranks);
    int row = 0;
    for (int r = 0; r < ranks; ++r) {
      const RankBand& b = part.band(r);
      EXPECT_EQ(b.row_begin, row);
      EXPECT_GT(b.rows(), 0);
      EXPECT_EQ(b.node_begin, static_cast<i64>(b.row_begin) * cfg.mesh_cols);
      EXPECT_EQ(b.node_end, static_cast<i64>(b.row_end) * cfg.mesh_cols);
      for (int rr = b.row_begin; rr < b.row_end; ++rr) {
        EXPECT_EQ(part.owner_of_row(rr), r);
      }
      row = b.row_end;
    }
    EXPECT_EQ(row, cfg.mesh_rows);
    EXPECT_TRUE(part.owns_node(ranks - 1,
                               static_cast<i64>(cfg.mesh_rows) * cfg.mesh_cols -
                                   1));
  }

  // Every page region at every level must stay inside one band.
  RankPartition part(sim.placement(), cfg.mesh_rows, cfg.mesh_cols, max);
  for (int level = 1; level <= cfg.k; ++level) {
    for (const PageInfo& page : sim.placement().pages(level)) {
      EXPECT_EQ(part.owner_of_row(page.region.r0()),
                part.owner_of_row(page.region.r0() + page.region.rows() - 1));
    }
  }

  EXPECT_THROW(RankPartition(sim.placement(), cfg.mesh_rows, cfg.mesh_cols,
                             max + 1),
               ConfigError);
}

TEST(DistTransport, ChannelFifoAndStats) {
  ChannelHub hub(2);
  ChannelTransport a(hub, 0);
  ChannelTransport b(hub, 1);
  a.send(1, "one");
  a.send(1, "two");
  EXPECT_EQ(b.recv(0), "one");
  EXPECT_EQ(b.recv(0), "two");
  b.send(0, "pong");
  EXPECT_EQ(a.recv(1), "pong");
  EXPECT_EQ(a.stats().messages_sent, 2);
  EXPECT_EQ(a.stats().bytes_sent, 6);
  EXPECT_EQ(a.stats().messages_received, 1);
  EXPECT_EQ(b.stats().messages_received, 2);
}

TEST(DistTransport, KillUnblocksReceivers) {
  ChannelHub hub(2);
  ChannelTransport a(hub, 0);
  std::atomic<bool> threw{false};
  std::thread t([&] {
    try {
      a.recv(1);  // nothing will ever arrive
    } catch (const TransportError&) {
      threw.store(true);
    }
  });
  hub.kill();
  t.join();
  EXPECT_TRUE(threw.load());
  EXPECT_THROW(a.recv(1), TransportError);  // killed hub stays killed
}

TEST(DistCollectives, GatherReduceUniform) {
  constexpr int kRanks = 3;
  ChannelHub hub(kRanks);
  std::vector<std::unique_ptr<ChannelTransport>> eps;
  for (int r = 0; r < kRanks; ++r) {
    eps.push_back(std::make_unique<ChannelTransport>(hub, r));
  }
  std::atomic<int> divergence_errors{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      Collectives coll(*eps[static_cast<size_t>(r)]);
      const auto all = coll.allgather(std::string(1, char('a' + r)));
      ASSERT_EQ(all.size(), static_cast<size_t>(kRanks));
      EXPECT_EQ(all[0], "a");
      EXPECT_EQ(all[2], "c");
      EXPECT_EQ(coll.allreduce_sum(r + 1), 6);
      EXPECT_EQ(coll.allreduce_max(r * 10), 20);
      coll.barrier();
      coll.check_uniform(42, "same everywhere");
      try {
        coll.check_uniform(static_cast<u64>(r), "rank id");  // diverges
      } catch (const InternalError&) {
        divergence_errors.fetch_add(1);
      }
      EXPECT_GT(coll.wait().calls, 0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(divergence_errors.load(), kRanks);
}

TEST(DistMachineTest, OracleIdentityMidMem) {
  const int side = pick_side(4);
  ASSERT_GT(side, 0) << "no probed side admits 4 ranks";
  const SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;

  // Reference run on the single-process oracle, counters sampled.
  telemetry::clear();
  telemetry::set_enabled(true);
  PramMeshSimulator oracle(cfg);
  Rng rng_w(7);
  const auto writes = random_requests(n, cfg.num_vars, rng_w, Op::Write);
  Rng rng_r(7);
  const auto reads = random_requests(n, cfg.num_vars, rng_r, Op::Read);
  std::vector<StepStats> oracle_stats(2);
  const auto ow = oracle.step(writes, &oracle_stats[0]);
  const auto orr = oracle.step(reads, &oracle_stats[1]);

  for (const int ranks : {1, 2, 4}) {
    DistConfig dc;
    dc.sim = cfg;
    dc.ranks = ranks;
    dc.validate = 0;
    DistMachine machine(dc);
    EXPECT_EQ(machine.ranks(), ranks);
    std::vector<StepStats> stats(2);
    const auto dw = machine.step(writes, &stats[0]);
    const auto dr = machine.step(reads, &stats[1]);
    EXPECT_EQ(dw, ow) << "ranks=" << ranks;
    EXPECT_EQ(dr, orr) << "ranks=" << ranks;
    expect_stats_eq(stats[0], oracle_stats[0]);
    expect_stats_eq(stats[1], oracle_stats[1]);
    EXPECT_EQ(machine.now(), oracle.now());

    const telemetry::MeshCounters merged = machine.merged_counters();
    const telemetry::MeshCounters& ref = oracle.mesh().counters();
    EXPECT_EQ(merged.max_queue(), ref.max_queue()) << "ranks=" << ranks;
    EXPECT_EQ(merged.forwarded(), ref.forwarded()) << "ranks=" << ranks;
    EXPECT_EQ(merged.copies_touched(), ref.copies_touched())
        << "ranks=" << ranks;
    EXPECT_EQ(merged.survivors(), ref.survivors()) << "ranks=" << ranks;

    if (ranks > 1) {
      EXPECT_GT(machine.transport_totals().bytes_sent, 0);
      EXPECT_GT(machine.boundary_bytes(), 0);
      EXPECT_GT(machine.wait_totals().calls, 0);
    }
  }
  telemetry::set_enabled(false);
  telemetry::clear();
}

TEST(DistMachineTest, ValidateModeStaysGreen) {
  const int side = pick_side(2);
  ASSERT_GT(side, 0);
  const SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;
  PramMeshSimulator oracle(cfg);
  DistConfig dc;
  dc.sim = cfg;
  dc.ranks = 2;
  dc.validate = 1;
  DistMachine machine(dc);
  EXPECT_TRUE(machine.validate());
  Rng rng(11);
  const auto reqs = random_requests(n, cfg.num_vars, rng);
  EXPECT_EQ(machine.step(reqs), oracle.step(reqs));
}

TEST(DistMachineTest, ModuleFaultPlanIdentity) {
  // Module-only plans keep routing fault-free, so this exercises the
  // partitioned mode's degraded path.
  const int side = pick_side(4);
  ASSERT_GT(side, 0);
  SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;
  fault::FaultPlan plan(cfg.mesh_rows, cfg.mesh_cols);
  for (const i64 node : {i64{3}, n / 2, n - 7}) {
    plan.kill_module(static_cast<i32>(node));
  }
  ASSERT_FALSE(plan.affects_routing());
  cfg.fault_plan = plan;

  PramMeshSimulator oracle(cfg);
  Rng rng_o(21);
  const auto reqs = random_requests(n, cfg.num_vars, rng_o);
  StepStats ost;
  const DegradedResult oracle_r = oracle.step_degraded(reqs, &ost);

  for (const int ranks : {2, 4}) {
    DistConfig dc;
    dc.sim = cfg;
    dc.ranks = ranks;
    dc.validate = 0;
    DistMachine machine(dc);
    StepStats dst;
    const DegradedResult r = machine.step_degraded(reqs, &dst);
    EXPECT_EQ(r.values, oracle_r.values) << "ranks=" << ranks;
    EXPECT_EQ(r.ok, oracle_r.ok) << "ranks=" << ranks;
    EXPECT_EQ(r.report.dead_modules, oracle_r.report.dead_modules);
    EXPECT_EQ(r.report.copies_lost, oracle_r.report.copies_lost);
    EXPECT_EQ(r.report.requests_failed, oracle_r.report.requests_failed);
    expect_stats_eq(dst, ost);
  }
}

TEST(DistMachineTest, RoutingFaultPlanIdentity) {
  // Dead links make the plan routing-affecting, which flips DistProtocol
  // into the replicated fallback — identity must hold there too.
  const int side = pick_side(2);
  ASSERT_GT(side, 0);
  SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;
  fault::FaultPlan plan(cfg.mesh_rows, cfg.mesh_cols);
  plan.kill_link(static_cast<i32>(n / 3), Dir::East);
  plan.kill_link(static_cast<i32>(2 * n / 3), Dir::South);
  ASSERT_TRUE(plan.affects_routing());
  cfg.fault_plan = plan;

  PramMeshSimulator oracle(cfg);
  Rng rng(33);
  const auto writes = random_requests(n, cfg.num_vars, rng, Op::Write);
  StepStats ost0;
  StepStats ost1;
  oracle.step(writes, &ost0);
  Rng rng2(33);
  const auto reads = random_requests(n, cfg.num_vars, rng2, Op::Read);
  const auto oracle_vals = oracle.step(reads, &ost1);

  DistConfig dc;
  dc.sim = cfg;
  dc.ranks = 2;
  dc.validate = 0;
  DistMachine machine(dc);
  StepStats dst0;
  StepStats dst1;
  machine.step(writes, &dst0);
  const auto vals = machine.step(reads, &dst1);
  EXPECT_EQ(vals, oracle_vals);
  expect_stats_eq(dst0, ost0);
  expect_stats_eq(dst1, ost1);
}

TEST(DistServe, SnapshotRestoreAcrossRankCounts) {
  const int side = pick_side(4);
  ASSERT_GT(side, 0);
  const SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;
  Rng rng(55);
  const auto writes = random_requests(n, cfg.num_vars, rng, Op::Write);
  Rng rng2(55);
  const auto reads = random_requests(n, cfg.num_vars, rng2, Op::Read);

  // A dist-backed session runs some work, then snapshots.
  serve::SessionManager m0;
  DistConfig dc;
  dc.sim = cfg;
  dc.ranks = 2;
  dc.validate = 0;
  serve::Session& s0 = create_dist_session(m0, "snap", dc);
  EXPECT_FALSE(s0.has_sim());
  StepStats st;
  s0.step(writes, &st);
  const std::string bytes = s0.snapshot();

  // Restore onto 4 ranks, onto 1 rank, and onto a classic simulator; all
  // three continuations must agree, and the post-step snapshots of the
  // dist and classic restores must be byte-identical.
  serve::SessionManager m4;
  serve::Session& s4 = restore_dist_session(m4, "snap", bytes, 4);
  serve::SessionManager m1;
  serve::Session& s1 = restore_dist_session(m1, "snap", bytes, 1);
  serve::SessionManager mc;
  serve::Session& sc = mc.restore("snap", bytes);
  ASSERT_TRUE(sc.has_sim());

  StepStats st4;
  StepStats st1;
  StepStats stc;
  const auto v4 = s4.step(reads, &st4);
  const auto v1 = s1.step(reads, &st1);
  const auto vc = sc.step(reads, &stc);
  EXPECT_EQ(v4, vc);
  EXPECT_EQ(v1, vc);
  expect_stats_eq(st4, stc);
  expect_stats_eq(st1, stc);

  EXPECT_EQ(s4.snapshot(), sc.snapshot());
  EXPECT_EQ(s1.snapshot(), sc.snapshot());
}

TEST(DistServe, MidRunSnapshotRestoresAcrossRankCounts) {
  const int side = pick_side(4);
  ASSERT_GT(side, 0);
  const SimConfig cfg = mid_mem_config(side);
  const i64 n = static_cast<i64>(side) * side;

  // A 2-rank machine runs a 3-step prefix, then we snapshot mid-run (via
  // materialize) and continue the stream on 4 ranks, 1 rank, and the classic
  // simulator. Everything downstream must be bit-identical.
  DistConfig dc;
  dc.sim = cfg;
  dc.ranks = 2;
  dc.validate = 0;
  DistMachine m2(dc);
  for (int s = 0; s < 3; ++s) {
    Rng rng(900 + s);
    m2.step(random_requests(n, cfg.num_vars, rng,
                            s % 2 == 0 ? Op::Write : Op::Read));
  }
  const std::unique_ptr<PramMeshSimulator> mid = m2.materialize();
  const std::string bytes = serve::snapshot_simulator(*mid);

  std::unique_ptr<DistMachine> m4 = DistMachine::from_simulator(*mid, 4);
  std::unique_ptr<DistMachine> m1 = DistMachine::from_simulator(*mid, 1);
  std::unique_ptr<PramMeshSimulator> oracle = serve::restore_simulator(bytes);
  EXPECT_EQ(m4->now(), oracle->now());
  for (int s = 0; s < 2; ++s) {
    Rng ra(1700 + s);
    Rng rb(1700 + s);
    Rng rc(1700 + s);
    Rng rd(1700 + s);
    const Op op = s % 2 == 0 ? Op::Read : Op::Write;
    StepStats st2;
    StepStats st4;
    StepStats st1;
    StepStats sto;
    const auto v2 = m2.step(random_requests(n, cfg.num_vars, ra, op), &st2);
    const auto v4 = m4->step(random_requests(n, cfg.num_vars, rb, op), &st4);
    const auto v1 = m1->step(random_requests(n, cfg.num_vars, rc, op), &st1);
    const auto vo =
        oracle->step(random_requests(n, cfg.num_vars, rd, op), &sto);
    EXPECT_EQ(v2, vo) << "step " << s;
    EXPECT_EQ(v4, vo) << "step " << s;
    EXPECT_EQ(v1, vo) << "step " << s;
    expect_stats_eq(st2, sto);
    expect_stats_eq(st4, sto);
    expect_stats_eq(st1, sto);
  }
  const std::string after = serve::snapshot_simulator(*oracle);
  EXPECT_EQ(serve::snapshot_simulator(*m4->materialize()), after);
  EXPECT_EQ(serve::snapshot_simulator(*m1->materialize()), after);
}

// ---------------------------------------------------------------------------
// Transport unwind under load and wire-codec abuse.
// ---------------------------------------------------------------------------

TEST(DistTransport, KillUnwindsConcurrentCollectives) {
  constexpr int kRanks = 4;
  ChannelHub hub(kRanks);
  std::vector<std::unique_ptr<ChannelTransport>> eps;
  for (int r = 0; r < kRanks; ++r) {
    eps.push_back(std::make_unique<ChannelTransport>(hub, r));
  }
  // Ranks 1..3 loop collectives forever; rank 0 (the star root) never joins,
  // so all of them end up blocked inside gather/broadcast recvs. kill() must
  // unwind every one of them with TransportError, not deadlock.
  std::atomic<int> unwound{0};
  std::atomic<int> rounds{0};
  std::vector<std::thread> threads;
  for (int r = 1; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      Collectives coll(*eps[static_cast<size_t>(r)]);
      try {
        for (;;) {
          coll.allgather("payload");
          coll.allreduce_sum(r);
          coll.barrier();
          rounds.fetch_add(1);
        }
      } catch (const TransportError&) {
        unwound.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  hub.kill();
  for (auto& t : threads) t.join();
  EXPECT_EQ(unwound.load(), kRanks - 1);
  EXPECT_EQ(rounds.load(), 0);  // rank 0 never joined, no round completed
  // The hub stays killed: a late joiner may drain the workers' already-queued
  // contributions, but must hit TransportError as soon as it needs more.
  Collectives c0(*eps[0]);
  EXPECT_THROW(
      {
        for (int i = 0; i < 10; ++i) c0.barrier();
      },
      TransportError);
}

Packet fuzz_packet(u64 key, int salt) {
  Packet p;
  p.key = key;
  p.rank = key % 7;
  p.copy = key % 3;
  p.var = static_cast<i64>(key) * 11 + salt;
  p.origin = static_cast<i32>(salt);
  p.dest = static_cast<i32>(salt + 1);
  p.stash = static_cast<i32>(salt + 2);
  p.value = -static_cast<i64>(key);
  p.timestamp = salt;
  p.op = salt % 2 == 0 ? Op::Read : Op::Write;
  for (int t = 0; t < salt % 5; ++t) p.push_trail(static_cast<i32>(100 + t));
  return p;
}

TEST(DistWireFuzz, BoundaryTruncationAtEveryOffsetThrows) {
  std::vector<BoundaryHop> hops;
  for (int i = 0; i < 3; ++i) {
    BoundaryHop h;
    h.col = i;
    h.dest_r = static_cast<i16>(-i);
    h.dest_c = static_cast<i16>(i * 2);
    h.payload = fuzz_packet(static_cast<u64>(i + 1), i);
    hops.push_back(h);
  }
  for (const bool checksum : {false, true}) {
    const std::string frame = encode_boundary(hops, checksum);
    const std::vector<BoundaryHop> back = decode_boundary(frame);
    ASSERT_EQ(back.size(), hops.size());
    EXPECT_EQ(encode_boundary(back, checksum), frame);  // canonical bytes
    // A frame cut anywhere — header, mid-packet, mid-trailer — must be
    // reported as truncation, never read past the buffer.
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      EXPECT_THROW(decode_boundary(frame.substr(0, cut)), ConfigError)
          << "checksum=" << checksum << " cut=" << cut;
    }
  }
}

TEST(DistWireFuzz, ImplausibleCountsRejectedBeforeAllocation) {
  // Hop count claims 4 billion entries in a 5-byte frame: the plausibility
  // gate must throw before any reserve() happens.
  std::string frame;
  ByteWriter w(frame);
  w.put_u8(0);
  w.put_u32(0xffffffffu);
  try {
    decode_boundary(frame);
    FAIL() << "expected a count rejection";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("implausible"), std::string::npos);
  }

  Mesh mesh(4, 4);
  const RankBand band{0, 2, 0, 8};
  std::string buffers;
  ByteWriter wb(buffers);
  wb.put_u32(0x7fffffffu);
  EXPECT_THROW(decode_band_buffers(mesh, band, buffers), ConfigError);
}

TEST(DistWireFuzz, ChecksummedFrameRejectsEverySingleByteFlip) {
  std::vector<BoundaryHop> hops;
  BoundaryHop h;
  h.col = 3;
  h.dest_r = 1;
  h.dest_c = 2;
  h.payload = fuzz_packet(42, 3);
  hops.push_back(h);
  const std::string frame = encode_boundary(hops, true);
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    // Body flips trip the FNV trailer (or a parse guard first); trailer
    // flips mismatch the recomputed digest. Nothing may pass silently.
    EXPECT_THROW(decode_boundary(bad), std::exception) << "flip at " << i;
  }
}

TEST(DistWireFuzz, BandBuffersRoundTripAndMidFrameEofThrows) {
  Mesh src(4, 4);
  const RankBand band{0, 2, 0, 8};
  Rng rng(77);
  for (i64 node = band.node_begin; node < band.node_end; ++node) {
    auto& b = src.buf(static_cast<i32>(node));
    const i64 count = rng.below(4);
    for (i64 i = 0; i < count; ++i) {
      b.push_back(fuzz_packet(rng.below(1000), static_cast<int>(node + i)));
    }
  }
  const std::string frame = encode_band_buffers(src, band);

  Mesh dst(4, 4);
  decode_band_buffers(dst, band, frame);
  EXPECT_EQ(encode_band_buffers(dst, band), frame);
  for (i64 node = band.node_begin; node < band.node_end; ++node) {
    EXPECT_EQ(dst.buf(static_cast<i32>(node)).size(),
              src.buf(static_cast<i32>(node)).size());
  }

  // Mid-frame EOF at every offset, including offsets inside a trail array.
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    Mesh scratch(4, 4);
    EXPECT_THROW(decode_band_buffers(scratch, band, frame.substr(0, cut)),
                 ConfigError)
        << "cut=" << cut;
  }
  // Trailing garbage is rejected by expect_done, not silently ignored.
  Mesh scratch(4, 4);
  EXPECT_THROW(decode_band_buffers(scratch, band, frame + "x"), ConfigError);

  // Fills onto a divergent buffer shape is an internal invariant breach.
  const std::string fills = encode_band_fills(src, band);
  Mesh empty(4, 4);
  EXPECT_THROW(decode_band_fills(empty, band, fills), std::exception);
}

TEST(DistWireFuzz, OverlongPacketTrailRejected) {
  // A trail-less packet ends with its trail_len byte; patch it to 255 so the
  // decoder sees a trail longer than the fixed array.
  std::string bare;
  ByteWriter wb(bare);
  Packet q = fuzz_packet(7, 0);
  q.trail_len = 0;
  put_packet(wb, q);
  bare.back() = static_cast<char>(0xff);
  ByteReader r(bare, "packet");
  EXPECT_THROW(get_packet(r), ConfigError);
}

TEST(DistWireFuzz, SeededRandomBytesNeverCrashDecoders) {
  Rng rng(20260808);
  int threw = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const size_t len = static_cast<size_t>(rng.below(160));
    std::string noise(len, '\0');
    for (char& c : noise) c = static_cast<char>(rng.below(256));
    try {
      const auto hops = decode_boundary(noise);
      (void)hops;
    } catch (const ConfigError&) {
      ++threw;
    } catch (const InternalError&) {
      ++threw;
    }
    Mesh scratch(4, 4);
    const RankBand band{0, 2, 0, 8};
    try {
      decode_band_buffers(scratch, band, noise);
    } catch (const ConfigError&) {
      ++threw;
    } catch (const InternalError&) {
      ++threw;
    }
  }
  // Random bytes essentially never form a valid frame; what matters is that
  // every failure is a typed error, not a crash or wild allocation.
  EXPECT_GT(threw, 700);
}

}  // namespace
}  // namespace meshpram::dist
