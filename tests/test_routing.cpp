// Tests for the mesh algorithms of §2: block shearsort, group ranking,
// greedy XY routing, sort-based (l1,l2)-routing and the tessellated
// (l1,l2,δ,m)-routing.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "mesh/machine.hpp"
#include "mesh/parallel.hpp"
#include "routing/greedy.hpp"
#include "routing/lroute.hpp"
#include "routing/meshsort.hpp"
#include "routing/rank.hpp"
#include "routing/scan.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace meshpram {
namespace {

Packet mk(u64 key, i64 var = 0, i32 origin = 0) {
  Packet p;
  p.key = key;
  p.var = var;
  p.origin = origin;
  return p;
}

/// Scatter `count` packets with random keys over the region, uneven loads.
void scatter_random(Mesh& mesh, const Region& g, i64 count, u64 key_range,
                    Rng& rng) {
  for (i64 i = 0; i < count; ++i) {
    const i64 s = rng.range(0, g.size() - 1);
    mesh.buf(mesh.node_id(g.at_snake(s)))
        .push_back(mk(rng.below(key_range), i, static_cast<i32>(s)));
  }
}

std::vector<u64> keys_in_snake_order(Mesh& mesh, const Region& g) {
  std::vector<u64> out;
  for (i64 s = 0; s < g.size(); ++s) {
    for (const Packet& p : mesh.buf(mesh.node_id(g.at_snake(s)))) {
      out.push_back(p.key);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sorting.
// ---------------------------------------------------------------------------

struct SortCase {
  int rows;
  int cols;
  i64 packets;
  u64 key_range;
};

class SortSweep : public ::testing::TestWithParam<SortCase> {};

TEST_P(SortSweep, SortsPacksAndPreservesMultiset) {
  const auto [rows, cols, count, range] = GetParam();
  Mesh mesh(rows, cols);
  const Region g = mesh.whole();
  Rng rng(static_cast<u64>(rows * 1000003 + cols * 1009 + count));
  scatter_random(mesh, g, count, range, rng);

  std::vector<u64> before = keys_in_snake_order(mesh, g);
  std::sort(before.begin(), before.end());

  const i64 steps = sort_region(mesh, g);
  EXPECT_GE(steps, 0);
  EXPECT_TRUE(region_sorted(mesh, g));

  std::vector<u64> after = keys_in_snake_order(mesh, g);
  EXPECT_EQ(after, before);  // sorted AND multiset-preserving
  EXPECT_EQ(mesh.total_packets(g), count);
}

TEST_P(SortSweep, AnalyticModeMatchesSimulatedPlacement) {
  const auto [rows, cols, count, range] = GetParam();
  Mesh a(rows, cols), b(rows, cols);
  Rng rng1(99), rng2(99);
  scatter_random(a, a.whole(), count, range, rng1);
  scatter_random(b, b.whole(), count, range, rng2);

  const i64 sim_steps = sort_region(a, a.whole(), {SortMode::Simulated});
  const i64 ana_steps = sort_region(b, b.whole(), {SortMode::Analytic});

  // Identical canonical placement, node by node.
  for (i32 id = 0; id < a.size(); ++id) {
    const auto& ba = a.buf(id);
    const auto& bb = b.buf(id);
    ASSERT_EQ(ba.size(), bb.size()) << "node " << id;
    for (size_t i = 0; i < ba.size(); ++i) {
      EXPECT_EQ(ba[i].key, bb[i].key);
      EXPECT_EQ(ba[i].var, bb[i].var);
    }
  }
  // The analytic charge is the oblivious worst case: never below the
  // early-exit simulated cost.
  EXPECT_GE(ana_steps, sim_steps);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SortSweep,
    ::testing::Values(SortCase{1, 1, 5, 10}, SortCase{1, 16, 40, 8},
                      SortCase{16, 1, 40, 1000}, SortCase{4, 4, 16, 4},
                      SortCase{8, 8, 64, 1u << 30}, SortCase{8, 8, 500, 7},
                      SortCase{7, 5, 123, 50}, SortCase{16, 16, 1000, 3},
                      SortCase{5, 9, 1, 100}, SortCase{6, 6, 0, 10}),
    [](const ::testing::TestParamInfo<SortCase>& info) {
      return std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols) + "_p" +
             std::to_string(info.param.packets);
    });

TEST(Sort, AlreadySortedIsCheap) {
  Mesh mesh(8, 8);
  const Region g = mesh.whole();
  for (i64 s = 0; s < g.size(); ++s) {
    mesh.buf(mesh.node_id(g.at_snake(s))).push_back(mk(static_cast<u64>(s)));
  }
  const i64 steps = sort_region(mesh, g);
  EXPECT_TRUE(region_sorted(mesh, g));
  // Early exit: far below the worst-case bound.
  EXPECT_LT(steps, shearsort_step_bound(g, 1) / 2);
}

TEST(Sort, PresortedDuplicateBoundariesCheapAndCanonical) {
  // Presorted input whose duplicate keys straddle block boundaries: every
  // merge_split sees large[0] equal (under the full comparator) or greater
  // than small[cap-1], so the early-exit fast path fires everywhere and the
  // quiet rounds terminate the sort far below the oblivious bound. The
  // early exit must not skip a required exchange: the layout has to match
  // the Analytic canonical placement bit for bit.
  Mesh sim(8, 8), ana(8, 8);
  const Region g = sim.whole();
  for (i64 s = 0; s < g.size(); ++s) {
    for (int j = 0; j < 3; ++j) {
      // Keys repeat across 8 consecutive snake positions (whole rows), so
      // every adjacent block pair shares its boundary key.
      const Packet p = mk(static_cast<u64>(s / 8), s * 3 + j,
                          static_cast<i32>(s));
      sim.buf(sim.node_id(g.at_snake(s))).push_back(p);
      ana.buf(ana.node_id(g.at_snake(s))).push_back(p);
    }
  }
  const i64 steps = sort_region(sim, g, {SortMode::Simulated});
  sort_region(ana, ana.whole(), {SortMode::Analytic});
  EXPECT_TRUE(region_sorted(sim, g));
  EXPECT_LT(steps, shearsort_step_bound(g, 3) / 2);
  for (i32 id = 0; id < sim.size(); ++id) {
    const auto& bs = sim.buf(id);
    const auto& ba = ana.buf(id);
    ASSERT_EQ(bs.size(), ba.size()) << "node " << id;
    for (size_t i = 0; i < bs.size(); ++i) {
      EXPECT_EQ(bs[i].key, ba[i].key) << "node " << id << " slot " << i;
      EXPECT_EQ(bs[i].var, ba[i].var) << "node " << id << " slot " << i;
    }
  }
}

TEST(Sort, CanonicalLayoutIsInvariantUnderInitialShuffle) {
  // Same multiset of packets, scattered over the region in two different
  // initial arrangements: the sorted layout must be identical node by node
  // and slot by slot (the total order breaks key ties on the payload, so
  // the result is a pure function of the multiset).
  Mesh a(8, 8), b(8, 8);
  const Region g = a.whole();
  Rng keys(271828);
  std::vector<Packet> packets;
  for (int i = 0; i < 300; ++i) {
    packets.push_back(mk(keys.below(7), i, static_cast<i32>(i % 64)));
  }
  Rng place_a(31), place_b(1042);
  for (const Packet& p : packets) {
    a.buf(a.node_id(g.at_snake(place_a.range(0, g.size() - 1)))).push_back(p);
    b.buf(b.node_id(g.at_snake(place_b.range(0, g.size() - 1)))).push_back(p);
  }
  sort_region(a, g, {SortMode::Simulated});
  sort_region(b, b.whole(), {SortMode::Simulated});
  EXPECT_TRUE(region_sorted(a, g));
  for (i32 id = 0; id < a.size(); ++id) {
    const auto& ba = a.buf(id);
    const auto& bb = b.buf(id);
    ASSERT_EQ(ba.size(), bb.size()) << "node " << id;
    for (size_t i = 0; i < ba.size(); ++i) {
      EXPECT_EQ(ba[i].key, bb[i].key) << "node " << id << " slot " << i;
      EXPECT_EQ(ba[i].var, bb[i].var) << "node " << id << " slot " << i;
      EXPECT_EQ(ba[i].origin, bb[i].origin)
          << "node " << id << " slot " << i;
    }
  }
}

TEST(Sort, ParallelRoundsMatchSerialLayout) {
  // Force the line-parallel odd-even rounds (stripe_min_nodes = 1) and check
  // the layout against a serial sort of the same input.
  Mesh ser(8, 8), par(8, 8);
  Rng r1(77), r2(77);
  scatter_random(ser, ser.whole(), 400, 1u << 20, r1);
  scatter_random(par, par.whole(), 400, 1u << 20, r2);

  set_execution_threads(1);
  const i64 steps_ser = sort_region(ser, ser.whole(), {SortMode::Simulated});
  set_execution_threads(4);
  set_stripe_min_nodes(1);
  const i64 steps_par = sort_region(par, par.whole(), {SortMode::Simulated});
  set_stripe_min_nodes(0);
  set_execution_threads(0);

  EXPECT_EQ(steps_ser, steps_par);
  for (i32 id = 0; id < ser.size(); ++id) {
    const auto& bs = ser.buf(id);
    const auto& bp = par.buf(id);
    ASSERT_EQ(bs.size(), bp.size()) << "node " << id;
    for (size_t i = 0; i < bs.size(); ++i) {
      EXPECT_EQ(bs[i].key, bp[i].key) << "node " << id << " slot " << i;
      EXPECT_EQ(bs[i].var, bp[i].var) << "node " << id << " slot " << i;
    }
  }
}

TEST(Sort, ReverseOrderWorstCaseStaysWithinBound) {
  Mesh mesh(8, 8);
  const Region g = mesh.whole();
  for (i64 s = 0; s < g.size(); ++s) {
    mesh.buf(mesh.node_id(g.at_snake(s)))
        .push_back(mk(static_cast<u64>(g.size() - s)));
  }
  const i64 steps = sort_region(mesh, g);
  EXPECT_TRUE(region_sorted(mesh, g));
  EXPECT_LE(steps, shearsort_step_bound(g, 1));
}

TEST(Sort, SubregionSortLeavesRestAlone) {
  Mesh mesh(8, 8);
  const Region sub(2, 2, 4, 4);
  Rng rng(5);
  scatter_random(mesh, sub, 50, 100, rng);
  Packet outside = mk(0);
  mesh.buf(mesh.node_id({0, 0})).push_back(outside);
  sort_region(mesh, sub);
  EXPECT_TRUE(region_sorted(mesh, sub));
  EXPECT_EQ(mesh.buf(mesh.node_id({0, 0})).size(), 1u);
}

TEST(Sort, RejectsSentinelKey) {
  Mesh mesh(2, 2);
  mesh.buf(0).push_back(mk(kHoleKey));
  EXPECT_THROW(sort_region(mesh, mesh.whole()), ConfigError);
}

TEST(Sort, StepBoundFormula) {
  // phases = ceil(log2 rows) + 1; bound = L*(phases*(R+C) + C).
  EXPECT_EQ(shearsort_step_bound(Region(0, 0, 8, 8), 1), (4 * 16 + 8));
  EXPECT_EQ(shearsort_step_bound(Region(0, 0, 8, 8), 3), 3 * (4 * 16 + 8));
  EXPECT_EQ(shearsort_step_bound(Region(0, 0, 1, 16), 2), 2 * (1 * 17 + 16));
}

// ---------------------------------------------------------------------------
// Scan + ranking.
// ---------------------------------------------------------------------------

TEST(Scan, ExclusivePrefixSum) {
  const Region g(0, 0, 4, 4);
  std::vector<i64> vals(16);
  for (int i = 0; i < 16; ++i) vals[static_cast<size_t>(i)] = i + 1;
  const auto r =
      scan_snake<i64>(g, vals, 0, [](i64 a, i64 b) { return a + b; });
  ASSERT_EQ(r.prefix.size(), 16u);
  EXPECT_EQ(r.prefix[0], 0);
  EXPECT_EQ(r.prefix[1], 1);
  EXPECT_EQ(r.prefix[15], 15 * 16 / 2);
  EXPECT_EQ(r.steps, 2 * 4 + 4);
  EXPECT_THROW(
      scan_snake<i64>(g, std::vector<i64>(3), 0,
                      [](i64 a, i64 b) { return a + b; }),
      ConfigError);
}

TEST(Rank, RanksWithinGroupsAfterSort) {
  Mesh mesh(6, 6);
  const Region g = mesh.whole();
  Rng rng(17);
  scatter_random(mesh, g, 300, 9, rng);  // many collisions across 9 keys
  sort_region(mesh, g);
  const i64 steps = rank_within_groups(mesh, g);
  EXPECT_GT(steps, 0);

  // Every key group must carry ranks 0..groupsize-1 exactly once.
  std::map<u64, std::set<u64>> ranks;
  std::map<u64, i64> sizes;
  for (i64 s = 0; s < g.size(); ++s) {
    for (const Packet& p : mesh.buf(mesh.node_id(g.at_snake(s)))) {
      EXPECT_TRUE(ranks[p.key].insert(p.rank).second)
          << "duplicate rank " << p.rank << " in group " << p.key;
      ++sizes[p.key];
    }
  }
  for (const auto& [key, rs] : ranks) {
    EXPECT_EQ(static_cast<i64>(rs.size()), sizes[key]);
    EXPECT_EQ(*rs.begin(), 0u);
    EXPECT_EQ(*rs.rbegin(), static_cast<u64>(sizes[key] - 1));
  }
}

TEST(Rank, RequiresSortedRegion) {
  Mesh mesh(2, 2);
  mesh.buf(0).push_back(mk(5));
  mesh.buf(3).push_back(mk(1));  // descending along snake
  EXPECT_THROW(rank_within_groups(mesh, mesh.whole()), InternalError);
}

TEST(Rank, MaxGroupSize) {
  Mesh mesh(2, 2);
  mesh.buf(0).push_back(mk(1));
  mesh.buf(1).push_back(mk(1));
  mesh.buf(2).push_back(mk(1));
  mesh.buf(3).push_back(mk(2));
  EXPECT_EQ(max_group_size(mesh, mesh.whole()), 3);
}

// ---------------------------------------------------------------------------
// Greedy routing.
// ---------------------------------------------------------------------------

TEST(Greedy, SinglePacketTakesExactlyDistanceSteps) {
  Mesh mesh(8, 8);
  Packet p = mk(0);
  p.dest = mesh.node_id({5, 6});
  mesh.buf(mesh.node_id({1, 2})).push_back(p);
  const RouteStats rs = route_greedy(mesh, mesh.whole());
  EXPECT_EQ(rs.steps, manhattan({1, 2}, {5, 6}));
  EXPECT_EQ(rs.packets, 1);
  EXPECT_EQ(mesh.buf(mesh.node_id({5, 6})).size(), 1u);
}

TEST(Greedy, PermutationDeliversWithinGreedyBound) {
  Mesh mesh(8, 8);
  const Region g = mesh.whole();
  Rng rng(23);
  std::vector<i64> perm(static_cast<size_t>(g.size()));
  for (i64 i = 0; i < g.size(); ++i) perm[static_cast<size_t>(i)] = i;
  rng.shuffle(perm);
  for (i64 s = 0; s < g.size(); ++s) {
    Packet p = mk(0, s);
    p.dest = mesh.node_at(g, perm[static_cast<size_t>(s)]);
    mesh.buf(mesh.node_at(g, s)).push_back(p);
  }
  const RouteStats rs = route_greedy(mesh, g);
  EXPECT_EQ(rs.packets, g.size());
  for (i64 s = 0; s < g.size(); ++s) {
    const i32 id = mesh.node_at(g, s);
    ASSERT_EQ(mesh.buf(id).size(), 1u) << "node " << id;
    EXPECT_EQ(mesh.buf(id)[0].dest, id);
  }
  // Greedy XY on a permutation: never worse than a small multiple of the
  // diameter (theory: 2*sqrt(n)-2 with farthest-first on column-balanced
  // inputs; random permutations stay close to that).
  EXPECT_LE(rs.steps, 4 * (mesh.rows() + mesh.cols()));
}

TEST(Greedy, HotSpotSerializesOnReceiverLinks) {
  // All 4 neighbors + far nodes target one node: receiver has 4 in-links, so
  // steps >= ceil(packets / 4).
  Mesh mesh(8, 8);
  const Region g = mesh.whole();
  const i32 target = mesh.node_id({4, 4});
  i64 count = 0;
  for (i64 s = 0; s < g.size(); ++s) {
    const i32 id = mesh.node_at(g, s);
    if (id == target) continue;
    Packet p = mk(0, s);
    p.dest = target;
    mesh.buf(id).push_back(p);
    ++count;
  }
  const RouteStats rs = route_greedy(mesh, g);
  EXPECT_EQ(static_cast<i64>(mesh.buf(target).size()), count);
  EXPECT_GE(rs.steps, ceil_div(count, 4));
}

TEST(Greedy, PacketAlreadyAtDestinationCostsNothing) {
  Mesh mesh(4, 4);
  Packet p = mk(0);
  p.dest = 5;
  mesh.buf(5).push_back(p);
  const RouteStats rs = route_greedy(mesh, mesh.whole());
  EXPECT_EQ(rs.steps, 0);
  EXPECT_EQ(mesh.buf(5).size(), 1u);
}

TEST(Greedy, RejectsDestOutsideRegion) {
  Mesh mesh(4, 4);
  Packet p = mk(0);
  p.dest = mesh.node_id({3, 3});
  mesh.buf(mesh.node_id({0, 0})).push_back(p);
  EXPECT_THROW(route_greedy(mesh, Region(0, 0, 2, 2)), ConfigError);
}

TEST(Greedy, StaysWithinSubregion) {
  // Packets in a subregion must be routed using only subregion nodes; the
  // rest of the mesh must stay untouched.
  Mesh mesh(8, 8);
  const Region sub(2, 2, 4, 4);
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    Packet p = mk(0, i);
    p.dest = mesh.node_id(sub.at_snake(rng.range(0, sub.size() - 1)));
    mesh.buf(mesh.node_id(sub.at_snake(rng.range(0, sub.size() - 1))))
        .push_back(p);
  }
  const RouteStats rs = route_greedy(mesh, sub);
  EXPECT_EQ(rs.packets, 40);
  i64 inside = 0;
  for (i64 s = 0; s < sub.size(); ++s) {
    inside += static_cast<i64>(mesh.buf(mesh.node_id(sub.at_snake(s))).size());
  }
  EXPECT_EQ(inside, 40);
}

/// Routes the same workload serially and on a forced stripe team, then
/// demands bit-identical stats and node-by-node buffer layouts (delivery
/// order included — the lane protocol must reproduce serial arrival order).
void expect_striped_matches_serial(
    const std::function<void(Mesh&)>& load) {
  Mesh ser(16, 16), par(16, 16);
  load(ser);
  load(par);

  set_execution_threads(1);
  const RouteStats ss = route_greedy(ser, ser.whole());
  set_execution_threads(4);
  set_stripe_min_nodes(1);
  const RouteStats sp = route_greedy(par, par.whole());
  set_stripe_min_nodes(0);
  set_execution_threads(0);

  EXPECT_EQ(ss.steps, sp.steps);
  EXPECT_EQ(ss.max_queue, sp.max_queue);
  EXPECT_EQ(ss.packets, sp.packets);
  EXPECT_EQ(ss.total_distance, sp.total_distance);
  for (i32 id = 0; id < ser.size(); ++id) {
    const auto& bs = ser.buf(id);
    const auto& bp = par.buf(id);
    ASSERT_EQ(bs.size(), bp.size()) << "node " << id;
    for (size_t i = 0; i < bs.size(); ++i) {
      EXPECT_EQ(bs[i].var, bp[i].var) << "node " << id << " slot " << i;
      EXPECT_EQ(bs[i].dest, bp[i].dest) << "node " << id << " slot " << i;
    }
  }
}

TEST(Greedy, StripedRandomTrafficMatchesSerial) {
  expect_striped_matches_serial([](Mesh& mesh) {
    Rng rng(4242);
    for (int i = 0; i < 800; ++i) {
      Packet p = mk(0, i);
      p.dest = static_cast<i32>(rng.range(0, mesh.size() - 1));
      mesh.buf(static_cast<i32>(rng.range(0, mesh.size() - 1))).push_back(p);
    }
  });
}

TEST(Greedy, StripedHotSpotMatchesSerial) {
  // Every node fires 8 packets at 4 targets in one row: arrival queues blow
  // far past the initial arena capacity, so the stripe workers' spill/grow
  // rounds run many times. The layout must still match serial exactly.
  expect_striped_matches_serial([](Mesh& mesh) {
    int i = 0;
    for (i32 id = 0; id < mesh.size(); ++id) {
      for (int j = 0; j < 8; ++j) {
        Packet p = mk(0, i++);
        p.dest = mesh.node_id({7, static_cast<int>(6 + (id + j) % 4)});
        mesh.buf(id).push_back(p);
      }
    }
  });
}

TEST(Greedy, ArenaGrowMatchesPreGrownArena) {
  // Adversarial convergence burst: every node fires 6 packets at a 2-node
  // hot spot, so arrival queues overflow the initial arena layout (setup
  // depth 6 + default headroom 2) and the in-place grow path runs. A second
  // mesh routes the identical workload with the arena pre-grown far past the
  // peak queue (headroom 512, grow never triggers); stats and node-by-node
  // delivery order must be bit-identical.
  const auto load = [](Mesh& mesh) {
    int i = 0;
    for (i32 id = 0; id < mesh.size(); ++id) {
      for (int j = 0; j < 6; ++j) {
        Packet p = mk(0, i++, id);
        p.dest = mesh.node_id({4, 4 + (id + j) % 2});
        mesh.buf(id).push_back(p);
      }
    }
  };
  Mesh grown(8, 8), pre(8, 8);
  load(grown);
  load(pre);

  ASSERT_EQ(route_initial_headroom(), 2);  // default: grow path will trigger
  const RouteStats gs = route_greedy(grown, grown.whole());
  // Peak queue beyond setup depth + headroom proves the arena actually grew.
  ASSERT_GT(gs.max_queue, 6 + 2);

  set_route_initial_headroom(512);
  const RouteStats ps = route_greedy(pre, pre.whole());
  set_route_initial_headroom(2);

  EXPECT_EQ(gs.steps, ps.steps);
  EXPECT_EQ(gs.max_queue, ps.max_queue);
  EXPECT_EQ(gs.packets, ps.packets);
  EXPECT_EQ(gs.total_distance, ps.total_distance);
  for (i32 id = 0; id < grown.size(); ++id) {
    const auto& bg = grown.buf(id);
    const auto& bp = pre.buf(id);
    ASSERT_EQ(bg.size(), bp.size()) << "node " << id;
    for (size_t i = 0; i < bg.size(); ++i) {
      EXPECT_EQ(bg[i].var, bp[i].var) << "node " << id << " slot " << i;
      EXPECT_EQ(bg[i].origin, bp[i].origin) << "node " << id << " slot " << i;
    }
  }
}

TEST(Greedy, ArenaGrowUnderStripesMatchesPreGrown) {
  // Same adversarial burst on a forced stripe team: overflow takes the
  // spill-and-merge path (workers may not resize the shared slab) instead of
  // the serial in-place grow. Pre-growing must again change nothing.
  Mesh grown(16, 16), pre(16, 16);
  const auto load = [](Mesh& mesh) {
    int i = 0;
    for (i32 id = 0; id < mesh.size(); ++id) {
      for (int j = 0; j < 6; ++j) {
        Packet p = mk(0, i++, id);
        p.dest = mesh.node_id({8, 7 + (id + j) % 2});
        mesh.buf(id).push_back(p);
      }
    }
  };
  load(grown);
  load(pre);

  set_execution_threads(4);
  set_stripe_min_nodes(1);
  const RouteStats gs = route_greedy(grown, grown.whole());
  ASSERT_GT(gs.max_queue, 6 + 2);
  set_route_initial_headroom(1024);
  const RouteStats ps = route_greedy(pre, pre.whole());
  set_route_initial_headroom(2);
  set_stripe_min_nodes(0);
  set_execution_threads(0);

  EXPECT_EQ(gs.steps, ps.steps);
  EXPECT_EQ(gs.max_queue, ps.max_queue);
  for (i32 id = 0; id < grown.size(); ++id) {
    const auto& bg = grown.buf(id);
    const auto& bp = pre.buf(id);
    ASSERT_EQ(bg.size(), bp.size()) << "node " << id;
    for (size_t i = 0; i < bg.size(); ++i) {
      EXPECT_EQ(bg[i].origin, bp[i].origin) << "node " << id << " slot " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// (l1,l2)-routing strategies.
// ---------------------------------------------------------------------------

TEST(LRoute, SortedRoutingDeliversEverything) {
  Mesh mesh(8, 8);
  const Region g = mesh.whole();
  Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    Packet p = mk(0, i);
    p.dest = mesh.node_at(g, rng.range(0, g.size() - 1));
    mesh.buf(mesh.node_at(g, rng.range(0, g.size() - 1))).push_back(p);
  }
  const auto st = route_sorted(mesh, g);
  EXPECT_GT(st.sort_steps, 0);
  EXPECT_GT(st.route_steps, 0);
  i64 delivered = 0;
  for (i32 id = 0; id < mesh.size(); ++id) {
    for (const Packet& p : mesh.buf(id)) {
      EXPECT_EQ(p.dest, id);
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 200);
}

TEST(LRoute, TwoStageDeliversAndBalancesIntermediateLoad) {
  Mesh mesh(8, 8);
  const Region g = mesh.whole();
  const auto subs = g.grid_split(4);  // 4x 4x4 quadrants
  Rng rng(53);
  // Skewed: every packet goes to quadrant 0 (the tessellated case where
  // sort+rank balancing matters).
  for (int i = 0; i < 160; ++i) {
    Packet p = mk(0, i);
    p.dest = mesh.node_id(subs[0].at_snake(rng.range(0, 3)));  // 4 hot nodes
    mesh.buf(mesh.node_at(g, rng.range(0, g.size() - 1))).push_back(p);
  }
  const auto st = route_two_stage(mesh, g, subs);
  EXPECT_GT(st.sort_steps, 0);
  EXPECT_GT(st.rank_steps, 0);
  i64 delivered = 0;
  for (i32 id = 0; id < mesh.size(); ++id) {
    for (const Packet& p : mesh.buf(id)) {
      EXPECT_EQ(p.dest, id);
      EXPECT_EQ(p.stash, -1);
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 160);
}

TEST(LRoute, TwoStageRejectsUncoveredDestination) {
  Mesh mesh(8, 8);
  const Region g = mesh.whole();
  // Tessellation covering only the top half.
  const std::vector<Region> subs{Region(0, 0, 4, 8)};
  Packet p = mk(0);
  p.dest = mesh.node_id({6, 6});
  mesh.buf(0).push_back(p);
  EXPECT_THROW(route_two_stage(mesh, g, subs), ConfigError);
}

TEST(LRoute, DirectEqualsGreedy) {
  Mesh a(6, 6), b(6, 6);
  Rng r1(7), r2(7);
  for (int i = 0; i < 60; ++i) {
    Packet p = mk(0, i);
    p.dest = static_cast<i32>(r1.range(0, a.size() - 1));
    a.buf(static_cast<i32>(r1.range(0, a.size() - 1))).push_back(p);
    Packet q = mk(0, i);
    q.dest = static_cast<i32>(r2.range(0, b.size() - 1));
    b.buf(static_cast<i32>(r2.range(0, b.size() - 1))).push_back(q);
  }
  const auto sa = route_direct(a, a.whole());
  const RouteStats sb = route_greedy(b, b.whole());
  EXPECT_EQ(sa.route_steps, sb.steps);
  EXPECT_EQ(sa.steps, sb.steps);
}

}  // namespace
}  // namespace meshpram
