// Unit and property tests for GF(p^e): field axioms checked exhaustively for
// every order used anywhere in the simulator (and a few more).
#include <gtest/gtest.h>

#include "gf/gf.hpp"
#include "gf/poly.hpp"
#include "util/error.hpp"

namespace meshpram {
namespace {

class FieldAxioms : public ::testing::TestWithParam<i64> {};

TEST_P(FieldAxioms, AdditionGroup) {
  const GF& f = GF::get(GetParam());
  const i64 q = f.order();
  for (i64 a = 0; a < q; ++a) {
    EXPECT_EQ(f.add(a, 0), a);
    EXPECT_EQ(f.add(a, f.neg(a)), 0);
    for (i64 b = 0; b < q; ++b) {
      EXPECT_EQ(f.add(a, b), f.add(b, a));
      for (i64 c = 0; c < q; ++c) {
        EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
      }
    }
  }
}

TEST_P(FieldAxioms, MultiplicationGroup) {
  const GF& f = GF::get(GetParam());
  const i64 q = f.order();
  for (i64 a = 0; a < q; ++a) {
    EXPECT_EQ(f.mul(a, 1), a);
    EXPECT_EQ(f.mul(a, 0), 0);
    if (a != 0) EXPECT_EQ(f.mul(a, f.inv(a)), 1);
    for (i64 b = 0; b < q; ++b) {
      EXPECT_EQ(f.mul(a, b), f.mul(b, a));
      for (i64 c = 0; c < q; ++c) {
        EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
      }
    }
  }
}

TEST_P(FieldAxioms, Distributivity) {
  const GF& f = GF::get(GetParam());
  const i64 q = f.order();
  for (i64 a = 0; a < q; ++a) {
    for (i64 b = 0; b < q; ++b) {
      for (i64 c = 0; c < q; ++c) {
        EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
      }
    }
  }
}

TEST_P(FieldAxioms, NoZeroDivisors) {
  const GF& f = GF::get(GetParam());
  const i64 q = f.order();
  for (i64 a = 1; a < q; ++a) {
    for (i64 b = 1; b < q; ++b) {
      EXPECT_NE(f.mul(a, b), 0) << "zero divisor: " << a << " * " << b;
    }
  }
}

TEST_P(FieldAxioms, SubAndDivInvertAddAndMul) {
  const GF& f = GF::get(GetParam());
  const i64 q = f.order();
  for (i64 a = 0; a < q; ++a) {
    for (i64 b = 0; b < q; ++b) {
      EXPECT_EQ(f.sub(f.add(a, b), b), a);
      if (b != 0) EXPECT_EQ(f.div(f.mul(a, b), b), a);
    }
  }
}

TEST_P(FieldAxioms, FrobeniusFixesPrimeSubfield) {
  const GF& f = GF::get(GetParam());
  // x -> x^p is a field automorphism; x^q = x for all x (little Fermat).
  for (i64 a = 0; a < f.order(); ++a) {
    EXPECT_EQ(f.pow(a, f.order()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(PrimePowers, FieldAxioms,
                         ::testing::Values<i64>(2, 3, 4, 5, 7, 8, 9, 11, 13,
                                                16, 25, 27));

TEST(GF, RejectsNonPrimePowers) {
  EXPECT_THROW(GF(6), ConfigError);
  EXPECT_THROW(GF(10), ConfigError);
  EXPECT_THROW(GF(12), ConfigError);
  EXPECT_THROW(GF(1), ConfigError);
  EXPECT_THROW(GF(0), ConfigError);
}

TEST(GF, CharacteristicAndDegree) {
  EXPECT_EQ(GF::get(9).characteristic(), 3);
  EXPECT_EQ(GF::get(9).extension_degree(), 2);
  EXPECT_EQ(GF::get(8).characteristic(), 2);
  EXPECT_EQ(GF::get(8).extension_degree(), 3);
  EXPECT_EQ(GF::get(7).characteristic(), 7);
  EXPECT_EQ(GF::get(7).extension_degree(), 1);
}

TEST(GF, PrimeFieldMatchesModularArithmetic) {
  const GF& f = GF::get(7);
  for (i64 a = 0; a < 7; ++a) {
    for (i64 b = 0; b < 7; ++b) {
      EXPECT_EQ(f.add(a, b), (a + b) % 7);
      EXPECT_EQ(f.mul(a, b), (a * b) % 7);
    }
  }
}

TEST(GF, RangeChecks) {
  const GF& f = GF::get(3);
  EXPECT_THROW(f.add(3, 0), ConfigError);
  EXPECT_THROW(f.add(0, -1), ConfigError);
  EXPECT_THROW(f.inv(0), ConfigError);
}

TEST(GF, GetReturnsSameInstance) {
  EXPECT_EQ(&GF::get(3), &GF::get(3));
}

TEST(Poly, DegreeAndNormalize) {
  using gf::Poly;
  Poly a{1, 2, 0, 0};
  EXPECT_EQ(gf::degree(a), 1);
  Poly zero{0, 0};
  EXPECT_EQ(gf::degree(zero), -1);
}

TEST(Poly, MulMatchesHandComputation) {
  using gf::Poly;
  // (1 + x)(1 + x) over GF(2) = 1 + x^2.
  const Poly r = gf::mul({1, 1}, {1, 1}, 2);
  EXPECT_EQ(r, (Poly{1, 0, 1}));
  // (2 + x)(1 + 2x) over GF(3) = 2 + 5x + 2x^2 = 2 + 2x + 2x^2.
  const Poly s = gf::mul({2, 1}, {1, 2}, 3);
  EXPECT_EQ(s, (Poly{2, 2, 2}));
}

TEST(Poly, ModReduces) {
  using gf::Poly;
  // x^2 mod (x^2 + 1) over GF(3) = -1 = 2.
  const Poly r = gf::mod({0, 0, 1}, {1, 0, 1}, 3);
  EXPECT_EQ(r, (Poly{2}));
}

TEST(Poly, IrreducibleSearchFindsKnownPolynomials) {
  using gf::Poly;
  // Any degree-2 irreducible over GF(2) must be x^2 + x + 1.
  const Poly m = gf::find_irreducible(2, 2);
  EXPECT_EQ(m, (Poly{1, 1, 1}));
  // Degree-1 is trivially irreducible (the smallest is x).
  EXPECT_EQ(gf::degree(gf::find_irreducible(5, 1)), 1);
}

TEST(Poly, IrreducibilityClassification) {
  using gf::Poly;
  // x^2 + 1 over GF(2) = (x+1)^2: reducible.
  EXPECT_FALSE(gf::is_irreducible({1, 0, 1}, 2));
  // x^2 + x + 1 over GF(2): irreducible.
  EXPECT_TRUE(gf::is_irreducible({1, 1, 1}, 2));
  // x^2 + 1 over GF(3): irreducible (no roots: 0,1,2 -> 1,2,2).
  EXPECT_TRUE(gf::is_irreducible({1, 0, 1}, 3));
  // x^2 - 1 over GF(3): reducible.
  EXPECT_FALSE(gf::is_irreducible({2, 0, 1}, 3));
}

}  // namespace
}  // namespace meshpram
