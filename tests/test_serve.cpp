// Serving subsystem tests (DESIGN.md §11): session lifecycle, admission
// control, fair-scheduler determinism (multiplexed sessions bit-identical to
// solo runs), snapshot/restore round trips (fault-free, under an active fault
// plan, across thread counts, with a pending queue), corrupted/truncated
// snapshot rejection, the wire API + loopback driver, ScopedPool isolation of
// concurrent simulators, and load-generator determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "serve/api.hpp"
#include "serve/loadgen.hpp"
#include "serve/manager.hpp"
#include "serve/scheduler.hpp"
#include "serve/snapshot.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace meshpram::serve {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.mesh_rows = 8;
  cfg.mesh_cols = 8;
  cfg.num_vars = 1080;
  cfg.q = 3;
  cfg.k = 2;
  return cfg;
}

/// Deterministic EREW request for (session tag, step index): processor i
/// accesses var (i*7 + tag*13 + step*29) % 1080 — i*7 stays distinct over
/// i < 64 because 7*64 < 1080, and the offset preserves distinctness.
Request make_request(u64 id, i64 tag, i64 step, i64 n, i64 num_vars) {
  Request req;
  req.id = id;
  req.accesses.reserve(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    AccessRequest a;
    a.var = (i * 7 + tag * 13 + step * 29) % num_vars;
    if ((i + step) % 2 == 0) {
      a.op = Op::Write;
      a.value = tag * 10000 + step * 100 + i;
    }
    req.accesses.push_back(a);
  }
  return req;
}

/// Collects scheduler completions keyed by request id.
struct CollectSink {
  std::map<u64, Response> done;
  void install(FairScheduler& sched) {
    sched.set_completion_sink([this](Response&& r) {
      done[r.id] = std::move(r);
    });
  }
};

// ---------------------------------------------------------------------------
// Session lifecycle.
// ---------------------------------------------------------------------------

TEST(SessionLifecycle, StatesFollowQueueAndControls) {
  SessionManager mgr;
  Session& s = mgr.create("a", small_config());
  EXPECT_EQ(s.state(), SessionState::Idle);
  EXPECT_TRUE(s.admissible());
  EXPECT_FALSE(s.runnable());

  s.enqueue(make_request(1, 0, 0, 4, 1080));
  EXPECT_EQ(s.state(), SessionState::Running);
  EXPECT_TRUE(s.runnable());

  s.suspend();
  EXPECT_EQ(s.state(), SessionState::Suspended);
  EXPECT_FALSE(s.runnable());
  EXPECT_FALSE(s.admissible());
  s.resume();
  EXPECT_EQ(s.state(), SessionState::Running);  // queue still non-empty

  (void)s.dequeue();
  EXPECT_EQ(s.state(), SessionState::Idle);  // drained back to idle

  s.drain();
  EXPECT_EQ(s.state(), SessionState::Draining);
  EXPECT_TRUE(s.drained());
  EXPECT_THROW(s.suspend(), ConfigError);
  EXPECT_EQ(mgr.reap_drained(), 1);
  EXPECT_EQ(mgr.size(), 0);
}

TEST(SessionLifecycle, ManagerRejectsDuplicatesAndUnknownIds) {
  SessionManager mgr;
  Session& a = mgr.create("a", small_config());
  EXPECT_THROW(mgr.create("a", small_config()), ConfigError);
  EXPECT_THROW(mgr.destroy(a.id() + 77), ConfigError);
  EXPECT_EQ(mgr.find_by_name("a"), &a);
  EXPECT_EQ(mgr.find_by_name("b"), nullptr);
  mgr.destroy(a.id());
  EXPECT_EQ(mgr.size(), 0);
  // The name is free again after destroy.
  mgr.create("a", small_config());
}

TEST(SessionLifecycle, SessionsListedInIdOrder) {
  SessionManager mgr;
  mgr.create("c", small_config());
  mgr.create("a", small_config());
  mgr.create("b", small_config());
  const std::vector<Session*> order = mgr.sessions();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_LT(order[0]->id(), order[1]->id());
  EXPECT_LT(order[1]->id(), order[2]->id());
  EXPECT_EQ(order[0]->name(), "c");  // creation order, not name order
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST(Admission, BoundedQueueRejectsWithReason) {
  SessionManager mgr;
  SessionLimits limits;
  limits.queue_capacity = 2;
  Session& s = mgr.create("a", small_config(), limits);
  FairScheduler sched(mgr);

  EXPECT_TRUE(sched.submit(s.id(), make_request(1, 0, 0, 4, 1080)).accepted);
  EXPECT_TRUE(sched.submit(s.id(), make_request(2, 0, 1, 4, 1080)).accepted);
  const Admission third = sched.submit(s.id(), make_request(3, 0, 2, 4, 1080));
  EXPECT_FALSE(third.accepted);
  EXPECT_NE(third.reason.find("queue full"), std::string::npos);
  EXPECT_EQ(s.stats().rejected, 1);
  EXPECT_EQ(s.stats().accepted, 2);
  EXPECT_EQ(s.stats().peak_queue_depth, 2);
  EXPECT_EQ(s.queue_depth(), 2);  // bounded: the reject did not enqueue
}

TEST(Admission, LifecycleAndBudgetRejections) {
  SessionManager mgr;
  Session& a = mgr.create("a", small_config());
  Session& b = mgr.create("b", small_config());
  SchedulerConfig cfg;
  cfg.global_inflight = 3;
  FairScheduler sched(mgr, cfg);

  const Admission unknown = sched.submit(9999, make_request(1, 0, 0, 4, 1080));
  EXPECT_FALSE(unknown.accepted);
  EXPECT_NE(unknown.reason.find("unknown session"), std::string::npos);

  a.suspend();
  const Admission susp = sched.submit(a.id(), make_request(2, 0, 0, 4, 1080));
  EXPECT_FALSE(susp.accepted);
  EXPECT_NE(susp.reason.find("suspended"), std::string::npos);
  a.resume();

  a.drain();
  const Admission drain = sched.submit(a.id(), make_request(3, 0, 0, 4, 1080));
  EXPECT_FALSE(drain.accepted);
  EXPECT_NE(drain.reason.find("draining"), std::string::npos);

  // Fill the global budget through session b, then overflow it.
  for (u64 id = 10; id < 13; ++id) {
    EXPECT_TRUE(sched.submit(b.id(), make_request(id, 1, 0, 4, 1080)).accepted);
  }
  const Admission over = sched.submit(b.id(), make_request(13, 1, 0, 4, 1080));
  EXPECT_FALSE(over.accepted);
  EXPECT_NE(over.reason.find("global in-flight"), std::string::npos);
  EXPECT_EQ(sched.inflight(), 3);
}

// ---------------------------------------------------------------------------
// Fair scheduler: multiplexed == solo, bit for bit.
// ---------------------------------------------------------------------------

TEST(Scheduler, MultiplexedSessionsMatchSoloRuns) {
  constexpr i64 kSessions = 4;
  constexpr i64 kSteps = 6;
  const SimConfig cfg = small_config();

  SessionManager mgr;
  std::vector<u32> ids;
  for (i64 s = 0; s < kSessions; ++s) {
    ids.push_back(mgr.create("s" + std::to_string(s), cfg).id());
  }
  FairScheduler sched(mgr);
  CollectSink sink;
  sink.install(sched);

  // Interleave submissions across sessions; the scheduler serves them
  // round-robin, one PRAM step per session per slice.
  const i64 n = mgr.find(ids[0])->sim().processors();
  for (i64 step = 0; step < kSteps; ++step) {
    for (i64 s = 0; s < kSessions; ++s) {
      const u64 id = static_cast<u64>(s * 1000 + step);
      ASSERT_TRUE(
          sched.submit(ids[static_cast<size_t>(s)],
                       make_request(id, s, step, n, cfg.num_vars))
              .accepted);
    }
  }
  EXPECT_EQ(sched.run_until_idle(), kSessions * kSteps);
  EXPECT_EQ(sched.slices(), kSteps);

  // Solo baseline: each session's workload on a private simulator.
  for (i64 s = 0; s < kSessions; ++s) {
    PramMeshSimulator solo(cfg);
    for (i64 step = 0; step < kSteps; ++step) {
      StepStats stats;
      const std::vector<i64> want =
          solo.step(make_request(0, s, step, n, cfg.num_vars).accesses,
                    &stats);
      const auto it = sink.done.find(static_cast<u64>(s * 1000 + step));
      ASSERT_NE(it, sink.done.end());
      EXPECT_TRUE(it->second.ok);
      EXPECT_EQ(it->second.values, want) << "session " << s << " step "
                                         << step;
      EXPECT_EQ(it->second.mesh_steps, stats.total_steps);
      EXPECT_EQ(it->second.slice, step);  // round-robin: step k in slice k
    }
  }
}

TEST(Scheduler, SuspendedSessionsAreSkippedNotStarved) {
  SessionManager mgr;
  const SimConfig cfg = small_config();
  Session& a = mgr.create("a", cfg);
  Session& b = mgr.create("b", cfg);
  FairScheduler sched(mgr);
  CollectSink sink;
  sink.install(sched);

  const i64 n = a.sim().processors();
  ASSERT_TRUE(sched.submit(a.id(), make_request(1, 0, 0, n, cfg.num_vars))
                  .accepted);
  ASSERT_TRUE(sched.submit(b.id(), make_request(2, 1, 0, n, cfg.num_vars))
                  .accepted);
  a.suspend();
  EXPECT_EQ(sched.run_slice(), 1);  // only b ran
  EXPECT_EQ(sink.done.count(1), 0u);
  EXPECT_EQ(sink.done.count(2), 1u);
  a.resume();
  EXPECT_EQ(sched.run_slice(), 1);  // a's queued work survives suspension
  EXPECT_EQ(sink.done.count(1), 1u);
}

// ---------------------------------------------------------------------------
// Snapshot / restore.
// ---------------------------------------------------------------------------

/// Runs `steps` PRAM steps with tag `tag` starting at `first`, returning
/// (values, mesh_steps) per step.
std::vector<std::pair<std::vector<i64>, i64>> run_steps(PramMeshSimulator& sim,
                                                        i64 tag, i64 first,
                                                        i64 steps) {
  std::vector<std::pair<std::vector<i64>, i64>> out;
  const i64 n = sim.processors();
  for (i64 s = first; s < first + steps; ++s) {
    StepStats stats;
    std::vector<i64> values =
        sim.step(make_request(0, tag, s, n, sim.num_vars()).accesses, &stats);
    out.emplace_back(std::move(values), stats.total_steps);
  }
  return out;
}

TEST(Snapshot, RoundTripIsBitIdentical) {
  PramMeshSimulator sim(small_config());
  run_steps(sim, 3, 0, 5);

  const std::string bytes = snapshot_simulator(sim);
  std::unique_ptr<PramMeshSimulator> restored = restore_simulator(bytes);
  EXPECT_EQ(restored->now(), sim.now());
  EXPECT_FALSE(restored->config().fault_plan_from_env);

  // Canonical bytes: the restored machine re-snapshots to the same bytes.
  EXPECT_EQ(snapshot_simulator(*restored), bytes);

  // The remaining workload is bit-identical (values AND counted steps).
  const auto want = run_steps(sim, 3, 5, 5);
  const auto got = run_steps(*restored, 3, 5, 5);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].first, got[i].first) << "step " << i;
    EXPECT_EQ(want[i].second, got[i].second) << "step " << i;
  }
}

TEST(Snapshot, RoundTripUnderActiveFaultPlan) {
  fault::FaultSpec spec;
  spec.seed = 7;
  spec.node_rate = 0.03;
  spec.link_rate = 0.03;
  spec.stall_rate = 0.05;
  spec.drop_rate = 0.01;
  SimConfig cfg = small_config();
  cfg.fault_plan = fault::FaultPlan::random(8, 8, spec);
  cfg.fault_policy = FaultPolicy::Degrade;

  PramMeshSimulator sim(cfg);
  ASSERT_NE(sim.fault_plan(), nullptr);
  run_steps(sim, 4, 0, 4);

  const std::string bytes = snapshot_simulator(sim);
  std::unique_ptr<PramMeshSimulator> restored = restore_simulator(bytes);
  ASSERT_NE(restored->fault_plan(), nullptr);
  EXPECT_EQ(restored->fault_plan()->summary(), sim.fault_plan()->summary());

  const i64 n = sim.processors();
  for (i64 s = 4; s < 8; ++s) {
    StepStats ws, gs;
    const auto accesses =
        make_request(0, 4, s, n, sim.num_vars()).accesses;
    const DegradedResult want = sim.step_degraded(accesses, &ws);
    const DegradedResult got = restored->step_degraded(accesses, &gs);
    EXPECT_EQ(want.values, got.values) << "step " << s;
    EXPECT_EQ(want.ok, got.ok) << "step " << s;
    EXPECT_EQ(ws.total_steps, gs.total_steps) << "step " << s;
    EXPECT_EQ(want.report.requests_failed, got.report.requests_failed);
  }
}

TEST(Snapshot, RestoreIntoDifferentThreadCount) {
  ThreadPool one(1);
  ThreadPool four(4);

  std::string bytes;
  std::vector<std::pair<std::vector<i64>, i64>> want;
  {
    ScopedPool guard(one);
    PramMeshSimulator sim(small_config());
    run_steps(sim, 5, 0, 4);
    bytes = snapshot_simulator(sim);
    want = run_steps(sim, 5, 4, 4);
  }
  {
    ScopedPool guard(four);
    std::unique_ptr<PramMeshSimulator> restored = restore_simulator(bytes);
    const auto got = run_steps(*restored, 5, 4, 4);
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].first, got[i].first) << "step " << i;
      EXPECT_EQ(want[i].second, got[i].second) << "step " << i;
    }
  }
}

TEST(Snapshot, SessionSnapshotCarriesQueueRngAndStats) {
  SessionManager mgr;
  const SimConfig cfg = small_config();
  Session& s = mgr.create("orig", cfg);
  FairScheduler sched(mgr);
  CollectSink sink;
  sink.install(sched);

  const i64 n = s.sim().processors();
  // Execute two steps, then leave three queued.
  for (u64 id = 1; id <= 2; ++id) {
    ASSERT_TRUE(sched.submit(s.id(), make_request(id, 6, static_cast<i64>(id),
                                                  n, cfg.num_vars))
                    .accepted);
  }
  sched.run_until_idle();
  for (u64 id = 3; id <= 5; ++id) {
    ASSERT_TRUE(sched.submit(s.id(), make_request(id, 6, static_cast<i64>(id),
                                                  n, cfg.num_vars))
                    .accepted);
  }
  (void)s.rng()();  // advance the workload stream past its seed state
  const std::array<u64, 4> rng_state = s.rng().state();
  const std::string bytes = s.snapshot();

  // "Kill the process": a fresh manager/scheduler stack restores the bytes.
  SessionManager mgr2;
  Session& r = mgr2.restore("fork", bytes);
  EXPECT_EQ(r.name(), "fork");  // restored under a new name
  EXPECT_EQ(r.state(), SessionState::Running);
  EXPECT_EQ(r.queue_depth(), 3);
  EXPECT_EQ(r.stats().steps_executed, 2);
  EXPECT_EQ(r.stats().accepted, 5);
  EXPECT_EQ(r.rng().state(), rng_state);

  FairScheduler sched2(mgr2);
  CollectSink sink2;
  sink2.install(sched2);
  EXPECT_EQ(sched2.run_until_idle(), 3);

  // The original finishes its queue too; both must agree bit for bit.
  sched.run_until_idle();
  for (u64 id = 3; id <= 5; ++id) {
    ASSERT_EQ(sink.done.count(id), 1u);
    ASSERT_EQ(sink2.done.count(id), 1u);
    EXPECT_EQ(sink.done[id].values, sink2.done[id].values) << "req " << id;
    EXPECT_EQ(sink.done[id].mesh_steps, sink2.done[id].mesh_steps);
  }
}

TEST(Snapshot, RejectsCorruptionTruncationAndVersionSkew) {
  PramMeshSimulator sim(small_config());
  run_steps(sim, 8, 0, 2);
  const std::string bytes = snapshot_simulator(sim);

  // Truncation at several depths.
  for (const size_t keep : {0u, 3u, 17u}) {
    EXPECT_THROW((void)restore_simulator(std::string_view(bytes).substr(
                     0, std::min(keep, bytes.size()))),
                 SnapshotError);
  }
  EXPECT_THROW((void)restore_simulator(
                   std::string_view(bytes).substr(0, bytes.size() - 1)),
               SnapshotError);

  // Bit corruption anywhere (payload or trailer) fails the checksum.
  for (const size_t at : {size_t{0}, size_t{9}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::string bad = bytes;
    bad[at] = static_cast<char>(bad[at] ^ 0x40);
    EXPECT_THROW((void)restore_simulator(bad), SnapshotError) << "at " << at;
  }

  // Re-checksummed tampering reaches the structured validators.
  const auto rechecksum = [](std::string payload) {
    ByteWriter w(payload);
    w.put_u64(fnv1a64(std::string_view(payload.data(), payload.size() - 0)));
    return payload;
  };
  std::string payload(bytes.data(), bytes.size() - 8);
  {
    std::string bad = payload;
    bad[0] = static_cast<char>(bad[0] ^ 0xff);  // magic
    try {
      (void)restore_simulator(rechecksum(bad));
      FAIL() << "bad magic accepted";
    } catch (const SnapshotError& e) {
      EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
    }
  }
  {
    std::string bad = payload;
    bad[4] = static_cast<char>(bad[4] + 1);  // version
    try {
      (void)restore_simulator(rechecksum(bad));
      FAIL() << "future version accepted";
    } catch (const SnapshotError& e) {
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
  }
}

// ---------------------------------------------------------------------------
// ScopedPool: concurrent simulators stop contending on the process pool.
// ---------------------------------------------------------------------------

TEST(ScopedPool, TwoConcurrentSimulatorsMatchSerialBaseline) {
  const SimConfig cfg = small_config();
  constexpr i64 kSteps = 4;

  // Serial baseline per tag.
  std::vector<std::vector<std::pair<std::vector<i64>, i64>>> want;
  for (i64 tag = 0; tag < 2; ++tag) {
    PramMeshSimulator solo(cfg);
    want.push_back(run_steps(solo, tag, 0, kSteps));
  }

  // The same two workloads on two OS threads, each with a private pool.
  std::vector<std::vector<std::pair<std::vector<i64>, i64>>> got(2);
  std::vector<std::thread> threads;
  for (i64 tag = 0; tag < 2; ++tag) {
    threads.emplace_back([&, tag] {
      ThreadPool pool(2);
      ScopedPool guard(pool);
      PramMeshSimulator sim(cfg);
      got[static_cast<size_t>(tag)] = run_steps(sim, tag, 0, kSteps);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(got[0], want[0]);
  EXPECT_EQ(got[1], want[1]);
}

TEST(ScopedPool, FourConcurrentScheduledSessionsMatchSolo) {
  // The tsan-serve gate: four serving stacks on four OS threads, each
  // scheduler owning a private pool via ScopedPool injection, all running
  // concurrently — results must match the serial solo baseline, and the
  // whole thing must be TSan-clean.
  const SimConfig cfg = small_config();
  constexpr i64 kStacks = 4;
  constexpr i64 kSteps = 3;

  std::vector<std::vector<std::pair<std::vector<i64>, i64>>> want;
  for (i64 tag = 0; tag < kStacks; ++tag) {
    PramMeshSimulator solo(cfg);
    want.push_back(run_steps(solo, tag, 0, kSteps));
  }

  std::vector<std::vector<std::pair<std::vector<i64>, i64>>> got(kStacks);
  std::vector<std::thread> threads;
  for (i64 tag = 0; tag < kStacks; ++tag) {
    threads.emplace_back([&, tag] {
      SessionManager mgr;
      Session& s = mgr.create("t" + std::to_string(tag), cfg);
      SchedulerConfig scfg;
      scfg.threads = 2;  // scheduler-owned pool, installed per step
      FairScheduler sched(mgr, scfg);
      std::map<u64, Response> done;
      sched.set_completion_sink(
          [&done](Response&& r) { done[r.id] = std::move(r); });
      const i64 n = s.sim().processors();
      for (i64 t = 0; t < kSteps; ++t) {
        Request req = make_request(static_cast<u64>(t + 1), tag, t, n,
                                   cfg.num_vars);
        ASSERT_TRUE(sched.submit(s.id(), std::move(req)).accepted);
      }
      sched.run_until_idle();
      for (i64 t = 0; t < kSteps; ++t) {
        Response& r = done[static_cast<u64>(t + 1)];
        got[static_cast<size_t>(tag)].emplace_back(std::move(r.values),
                                                   r.mesh_steps);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (i64 tag = 0; tag < kStacks; ++tag) {
    EXPECT_EQ(got[static_cast<size_t>(tag)], want[static_cast<size_t>(tag)])
        << "stack " << tag;
  }
}

// ---------------------------------------------------------------------------
// Wire API + loopback driver.
// ---------------------------------------------------------------------------

TEST(WireApi, RequestAndResponseRoundTrip) {
  WireRequest req;
  req.type = MsgType::Step;
  req.request_id = 42;
  req.session = "alpha";
  req.accesses = make_request(0, 1, 2, 8, 1080).accesses;
  const std::string frame = encode_request(req);

  std::string_view buf = frame;
  const auto payload = next_frame(buf);
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(buf.empty());
  const WireRequest back = decode_request(*payload);
  EXPECT_EQ(back.type, MsgType::Step);
  EXPECT_EQ(back.request_id, 42u);
  EXPECT_EQ(back.session, "alpha");
  ASSERT_EQ(back.accesses.size(), req.accesses.size());
  for (size_t i = 0; i < req.accesses.size(); ++i) {
    EXPECT_EQ(back.accesses[i].var, req.accesses[i].var);
    EXPECT_EQ(back.accesses[i].op, req.accesses[i].op);
    EXPECT_EQ(back.accesses[i].value, req.accesses[i].value);
  }

  WireResponse resp;
  resp.type = MsgType::BatchRead;
  resp.request_id = 42;
  resp.values = {1, -2, 3};
  resp.mesh_steps = 77;
  resp.slice = 5;
  resp.stats.accepted = 9;
  const std::string rframe = encode_response(resp);
  std::string_view rbuf = rframe;
  const WireResponse rback = decode_response(*next_frame(rbuf));
  EXPECT_EQ(rback.type, MsgType::BatchRead);
  EXPECT_TRUE(rback.ok);
  EXPECT_EQ(rback.values, resp.values);
  EXPECT_EQ(rback.mesh_steps, 77);
  EXPECT_EQ(rback.slice, 5);
  EXPECT_EQ(rback.stats.accepted, 9);
}

TEST(WireApi, FramingHandlesPartialAndConcatenatedBuffers) {
  const std::string f1 = encode_control(MsgType::Stats, 1, "a");
  const std::string f2 = encode_control(MsgType::Snapshot, 2, "b");
  const std::string joined = f1 + f2;

  std::string_view partial(joined.data(), 2);
  EXPECT_FALSE(next_frame(partial).has_value());
  std::string_view cut(joined.data(), f1.size() + 3);
  EXPECT_TRUE(next_frame(cut).has_value());   // f1 complete
  EXPECT_FALSE(next_frame(cut).has_value());  // f2 only partially present

  std::string_view both = joined;
  EXPECT_EQ(decode_request(*next_frame(both)).request_id, 1u);
  EXPECT_EQ(decode_request(*next_frame(both)).request_id, 2u);
  EXPECT_TRUE(both.empty());
}

TEST(LoopbackDriver, EndToEndWriteReadSnapshotRestoreStats) {
  const SimConfig cfg = small_config();
  SessionManager mgr;
  Session& s = mgr.create("alpha", cfg);
  FairScheduler sched(mgr);
  LoopbackDriver driver(mgr, sched);

  const i64 n = s.sim().processors();
  std::vector<i64> vars, vals;
  for (i64 i = 0; i < n; ++i) {
    vars.push_back((i * 7) % cfg.num_vars);
    vals.push_back(500 + i);
  }
  driver.submit(encode_batch_write(1, "alpha", vars, vals));
  driver.submit(encode_batch_read(2, "alpha", vars));
  sched.run_until_idle();

  std::map<u64, WireResponse> got;
  for (const std::string& frame : driver.poll()) {
    std::string_view buf = frame;
    const WireResponse r = decode_response(*next_frame(buf));
    got[r.request_id] = r;
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(got[1].ok);
  EXPECT_EQ(got[1].type, MsgType::BatchWrite);
  EXPECT_TRUE(got[1].values.empty());
  EXPECT_TRUE(got[2].ok);
  ASSERT_EQ(got[2].values.size(), static_cast<size_t>(n));
  EXPECT_EQ(got[2].values, vals);
  EXPECT_GT(got[2].mesh_steps, 0);

  // Stats over the wire.
  driver.submit(encode_control(MsgType::Stats, 3, "alpha"));
  // Snapshot over the wire, then restore under a new name and re-read.
  driver.submit(encode_control(MsgType::Snapshot, 4, "alpha"));
  auto frames = driver.poll();
  ASSERT_EQ(frames.size(), 2u);
  std::string_view b3 = frames[0];
  const WireResponse stats = decode_response(*next_frame(b3));
  EXPECT_EQ(stats.type, MsgType::Stats);
  EXPECT_EQ(stats.stats.steps_executed, 2);
  std::string_view b4 = frames[1];
  const WireResponse snap = decode_response(*next_frame(b4));
  ASSERT_TRUE(snap.ok);
  ASSERT_FALSE(snap.snapshot_bytes.empty());

  driver.submit(
      encode_control(MsgType::Restore, 5, "beta", snap.snapshot_bytes));
  driver.submit(encode_batch_read(6, "beta", vars));
  sched.run_until_idle();
  frames = driver.poll();
  ASSERT_EQ(frames.size(), 2u);
  std::string_view b6 = frames[1];
  const WireResponse reread = decode_response(*next_frame(b6));
  EXPECT_TRUE(reread.ok);
  EXPECT_EQ(reread.values, vals);  // restored memory serves the same reads
}

TEST(LoopbackDriver, MalformedFramesAndRejectionsBecomeErrorResponses) {
  SessionManager mgr;
  SessionLimits limits;
  limits.queue_capacity = 1;
  Session& s = mgr.create("alpha", small_config(), limits);
  FairScheduler sched(mgr);
  LoopbackDriver driver(mgr, sched);

  driver.submit("garbage-not-a-frame");
  driver.submit(encode_batch_read(1, "ghost", {0, 1}));
  driver.submit(encode_batch_read(2, "alpha", {0, 1}));
  driver.submit(encode_batch_read(3, "alpha", {2, 3}));  // queue full
  const auto frames = driver.poll();
  ASSERT_EQ(frames.size(), 3u);  // garbage + ghost + rejection; id 2 pending
  for (const std::string& frame : frames) {
    std::string_view buf = frame;
    const WireResponse r = decode_response(*next_frame(buf));
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(r.slice, -1);  // never executed
  }
  EXPECT_EQ(s.stats().rejected, 1);
  sched.run_until_idle();
  EXPECT_EQ(driver.poll().size(), 1u);  // id 2 completed
}

// ---------------------------------------------------------------------------
// Load generator.
// ---------------------------------------------------------------------------

struct LoadgenStack {
  SessionManager mgr;
  std::unique_ptr<FairScheduler> sched;
  std::unique_ptr<LoopbackDriver> driver;
  std::vector<std::string> names;
  std::vector<SessionShape> shapes;

  explicit LoadgenStack(i64 sessions, i64 queue_capacity,
                        i64 global_inflight) {
    const SimConfig cfg = small_config();
    SessionLimits limits;
    limits.queue_capacity = queue_capacity;
    for (i64 s = 0; s < sessions; ++s) {
      Session& sess =
          mgr.create("lg" + std::to_string(s), cfg, limits);
      names.push_back(sess.name());
      shapes.push_back({sess.sim().processors(), sess.sim().num_vars()});
    }
    SchedulerConfig scfg;
    scfg.global_inflight = global_inflight;
    sched = std::make_unique<FairScheduler>(mgr, scfg);
    driver = std::make_unique<LoopbackDriver>(mgr, *sched);
  }

  LoadgenReport run(const LoadgenConfig& cfg) {
    return run_loadgen(*driver, *sched, names, shapes, cfg);
  }
};

TEST(Loadgen, DeterministicAcrossRuns) {
  LoadgenConfig cfg;
  cfg.requests = 60;
  cfg.arrivals_per_slice = 3.0;  // over capacity: 3 arrivals, 2 sessions
  cfg.seed = 11;
  cfg.accesses_per_request = 16;

  LoadgenStack a(2, 4, 64);
  LoadgenStack b(2, 4, 64);
  const LoadgenReport ra = a.run(cfg);
  const LoadgenReport rb = b.run(cfg);

  EXPECT_EQ(ra.offered, 60);
  EXPECT_EQ(ra.rejected + ra.completed + ra.failed, ra.offered);
  EXPECT_EQ(ra.failed, 0);
  EXPECT_GT(ra.rejected, 0);  // over-capacity load must hit admission control
  EXPECT_LE(ra.peak_queue_depth, 4);  // bounded queue, never exceeded

  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.rejected, rb.rejected);
  EXPECT_EQ(ra.slices, rb.slices);
  EXPECT_EQ(ra.total_mesh_steps, rb.total_mesh_steps);
  EXPECT_EQ(ra.peak_queue_depth, rb.peak_queue_depth);
  EXPECT_EQ(ra.p50_slices, rb.p50_slices);
  EXPECT_EQ(ra.p99_slices, rb.p99_slices);
}

TEST(Loadgen, WorkloadGenerationIsPureAndErew) {
  LoadgenConfig cfg;
  cfg.requests = 40;
  cfg.seed = 5;
  const std::vector<SessionShape> shapes = {{64, 1080}, {64, 1080}};
  const auto w1 = generate_workload(cfg, shapes);
  const auto w2 = generate_workload(cfg, shapes);
  ASSERT_EQ(w1.size(), 40u);
  for (size_t i = 0; i < w1.size(); ++i) {
    EXPECT_EQ(w1[i].id, w2[i].id);
    EXPECT_EQ(w1[i].session_index, w2[i].session_index);
    EXPECT_EQ(w1[i].arrival_slice, w2[i].arrival_slice);
    ASSERT_EQ(w1[i].accesses.size(), w2[i].accesses.size());
    // EREW: distinct vars within one request.
    std::vector<i64> vars;
    for (const AccessRequest& a : w1[i].accesses) vars.push_back(a.var);
    std::sort(vars.begin(), vars.end());
    EXPECT_EQ(std::adjacent_find(vars.begin(), vars.end()), vars.end());
    if (i > 0) {
      EXPECT_GE(w1[i].arrival_slice, w1[i - 1].arrival_slice);
    }
  }
}

}  // namespace
}  // namespace meshpram::serve
