// Tests for the HMOS: level parameters, constructive memory map, and the
// physical placement onto the mesh (§3.1, §3.3).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "hmos/memory_map.hpp"
#include "hmos/params.hpp"
#include "hmos/placement.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram {
namespace {

TEST(Params, LevelSequenceMatchesPaper) {
  // n = 1024 (32x32), M = 4096, q = 3, k = 2:
  // f(4) = 1080 < 4096 <= f(5) = 9801 -> d1 = 5, m1 = 243;
  // d2 = ceil(5/2)+1 = 4... no: ceil(5/2) = 3, +1 = 4 -> m2 = 81.
  HmosParams p(3, 2, 4096, 32, 32);
  EXPECT_EQ(p.level(1).d, 5);
  EXPECT_EQ(p.level(1).modules, 243);
  EXPECT_EQ(p.level(2).d, 4);
  EXPECT_EQ(p.level(2).modules, 81);
  EXPECT_EQ(p.redundancy(), 9);
  EXPECT_EQ(p.level(1).pages, 3 * 243);
  EXPECT_EQ(p.level(2).pages, 81);
  EXPECT_NEAR(p.alpha(), std::log(4096.0) / std::log(1024.0), 1e-12);
}

TEST(Params, DeeperHierarchies) {
  HmosParams p(3, 3, 100000, 64, 64);
  // f(6) = 88452 < 100000 <= f(7) -> d1 = 7; d2 = ceil(7/2)+1 = 5;
  // d3 = ceil(5/2)+1 = 4.
  EXPECT_EQ(p.level(1).d, 7);
  EXPECT_EQ(p.level(2).d, 5);
  EXPECT_EQ(p.level(3).d, 4);
  EXPECT_EQ(p.redundancy(), 27);
  EXPECT_EQ(p.level(3).modules, 81);
}

TEST(Params, CullingThresholds) {
  HmosParams p(3, 2, 4096, 32, 32);
  // tau_i = 2 * q^k * n^{1 - 1/2^i}, n = 1024.
  EXPECT_EQ(p.culling_threshold(1), static_cast<i64>(2 * 9 * 32));  // n^{1/2}
  EXPECT_EQ(p.culling_threshold(2),
            static_cast<i64>(std::floor(2 * 9 * std::pow(1024.0, 0.75))));
  EXPECT_EQ(p.theorem3_bound(1), 2 * p.culling_threshold(1));
  EXPECT_THROW(p.culling_threshold(0), ConfigError);
  EXPECT_THROW(p.culling_threshold(3), ConfigError);
}

TEST(Params, MajorityAndExtensive) {
  EXPECT_EQ(HmosParams(3, 1, 64, 8, 8).majority(), 2);
  EXPECT_EQ(HmosParams(3, 1, 64, 8, 8).extensive(), 3);
  EXPECT_EQ(HmosParams(5, 1, 256, 16, 16).majority(), 3);
  EXPECT_EQ(HmosParams(5, 1, 256, 16, 16).extensive(), 4);
}

TEST(Params, RejectsInvalidConfigs) {
  EXPECT_THROW(HmosParams(2, 2, 4096, 32, 32), ConfigError);  // q = 2
  EXPECT_THROW(HmosParams(6, 2, 4096, 32, 32), ConfigError);  // not prime pow
  EXPECT_THROW(HmosParams(3, 0, 4096, 32, 32), ConfigError);  // k < 1
  EXPECT_THROW(HmosParams(3, 7, i64{1} << 40, 32, 32), ConfigError);  // k > 6
  EXPECT_THROW(HmosParams(3, 2, 100, 32, 32), ConfigError);   // M < n
  // More level-k modules than mesh nodes: M huge on a tiny mesh.
  EXPECT_THROW(HmosParams(3, 1, 1000000, 4, 4), ConfigError);
}

class MapFixture : public ::testing::Test {
 protected:
  MapFixture() : params_(3, 2, 4096, 32, 32), map_(params_) {}
  HmosParams params_;
  MemoryMap map_;
};

TEST_F(MapFixture, CopyIdRoundTrip) {
  Rng rng(8);
  for (int t = 0; t < 200; ++t) {
    const i64 var = rng.range(0, params_.num_vars() - 1);
    std::vector<i64> choices(2);
    choices[0] = rng.range(0, 2);
    choices[1] = rng.range(0, 2);
    const u64 id = map_.copy_id(var, choices);
    EXPECT_EQ(map_.variable_of(id), var);
    EXPECT_EQ(map_.choices_of(id), choices);
  }
}

TEST_F(MapFixture, ModulePathsFollowLevelGraphs) {
  Rng rng(9);
  for (int t = 0; t < 100; ++t) {
    const i64 var = rng.range(0, params_.num_vars() - 1);
    for (i64 c1 = 0; c1 < 3; ++c1) {
      for (i64 c2 = 0; c2 < 3; ++c2) {
        const u64 id = map_.copy_id(var, {c1, c2});
        const auto path = map_.module_path(id);
        ASSERT_EQ(path.size(), 2u);
        EXPECT_EQ(path[0], map_.graph(1).neighbor(var, c1));
        EXPECT_EQ(path[1], map_.graph(2).neighbor(path[0], c2));
        EXPECT_TRUE(map_.graph(1).adjacent(var, path[0]));
        EXPECT_TRUE(map_.graph(2).adjacent(path[0], path[1]));
        EXPECT_EQ(map_.module_at(id, 1), path[0]);
        EXPECT_EQ(map_.module_at(id, 2), path[1]);
      }
    }
  }
}

TEST_F(MapFixture, CopiesSpreadOverDistinctModules) {
  // The q copies of any variable go to q distinct level-1 modules, and the
  // q pages of any level-1 module go to q distinct level-2 modules.
  Rng rng(10);
  for (int t = 0; t < 100; ++t) {
    const i64 var = rng.range(0, params_.num_vars() - 1);
    std::set<i64> l1;
    for (i64 c = 0; c < 3; ++c) l1.insert(map_.graph(1).neighbor(var, c));
    EXPECT_EQ(l1.size(), 3u);
  }
  for (i64 u = 0; u < params_.level(1).modules; u += 17) {
    std::set<i64> l2;
    for (i64 c = 0; c < 3; ++c) l2.insert(map_.graph(2).neighbor(u, c));
    EXPECT_EQ(l2.size(), 3u);
  }
}

TEST_F(MapFixture, GraphShapesMatchParams) {
  EXPECT_EQ(map_.graph(1).num_inputs(), params_.num_vars());
  EXPECT_EQ(map_.graph(1).num_outputs(), params_.level(1).modules);
  EXPECT_EQ(map_.graph(2).num_inputs(), params_.level(1).modules);
  EXPECT_EQ(map_.graph(2).num_outputs(), params_.level(2).modules);
  EXPECT_EQ(map_.total_copies(), 4096 * 9);
}

TEST_F(MapFixture, RejectsOutOfRange) {
  EXPECT_THROW(map_.copy_id(-1, {0, 0}), ConfigError);
  EXPECT_THROW(map_.copy_id(4096, {0, 0}), ConfigError);
  EXPECT_THROW(map_.copy_id(0, {0}), ConfigError);
  EXPECT_THROW(map_.copy_id(0, {3, 0}), ConfigError);
  EXPECT_THROW(map_.graph(0), ConfigError);
  EXPECT_THROW(map_.graph(3), ConfigError);
}

// ---------------------------------------------------------------------------
// Placement.
// ---------------------------------------------------------------------------

class PlacementFixture : public ::testing::Test {
 protected:
  PlacementFixture()
      : params_(3, 2, 4096, 32, 32), map_(params_),
        placement_(map_, Region(0, 0, 32, 32)) {}
  HmosParams params_;
  MemoryMap map_;
  Placement placement_;
};

TEST_F(PlacementFixture, NotDegradedAtThisScale) {
  // 32x32 with M = 4096: q^{k-1} * m1 = 729 <= 1024 nodes.
  EXPECT_FALSE(placement_.degraded());
}

TEST_F(PlacementFixture, LevelKRegionsAreDisjoint) {
  std::set<std::pair<int, int>> covered;
  for (const PageInfo& page : placement_.pages(2)) {
    for (i64 s = 0; s < page.region.size(); ++s) {
      const Coord x = page.region.at_snake(s);
      EXPECT_TRUE(covered.insert({x.r, x.c}).second) << "overlap at " << x;
    }
  }
  EXPECT_LE(static_cast<i64>(covered.size()), 1024);
}

TEST_F(PlacementFixture, ChildRegionsNestInParents) {
  const auto& l1 = placement_.pages(1);
  const auto& l2 = placement_.pages(2);
  for (const PageInfo& page : l1) {
    ASSERT_GE(page.parent, 0);
    const Region& parent = l2[static_cast<size_t>(page.parent)].region;
    for (i64 s = 0; s < page.region.size(); ++s) {
      EXPECT_TRUE(parent.contains(page.region.at_snake(s)));
    }
  }
}

TEST_F(PlacementFixture, PageCountsMatchParams) {
  EXPECT_EQ(static_cast<i64>(placement_.pages(1).size()),
            params_.level(1).pages);
  EXPECT_EQ(static_cast<i64>(placement_.pages(2).size()),
            params_.level(2).pages);
}

TEST_F(PlacementFixture, EveryLevel1ModuleHasQPagesInDistinctParents) {
  std::map<i64, std::set<i64>> parents_of_module;
  for (const PageInfo& page : placement_.pages(1)) {
    parents_of_module[page.module].insert(
        placement_.pages(2)[static_cast<size_t>(page.parent)].module);
  }
  for (const auto& [module, parents] : parents_of_module) {
    EXPECT_EQ(parents.size(), 3u) << "module " << module;
  }
}

TEST_F(PlacementFixture, LocateIsConsistent) {
  Rng rng(11);
  for (int t = 0; t < 300; ++t) {
    const i64 var = rng.range(0, params_.num_vars() - 1);
    const u64 id = map_.copy_id(var, {rng.range(0, 2), rng.range(0, 2)});
    const CopyLoc loc = placement_.locate(id);
    const auto path = map_.module_path(id);
    ASSERT_EQ(path.size(), 2u);
    // Page modules along the descent match the module path.
    EXPECT_EQ(placement_.pages(1)[static_cast<size_t>(loc.page[0])].module,
              path[0]);
    EXPECT_EQ(placement_.pages(2)[static_cast<size_t>(loc.page[1])].module,
              path[1]);
    // The node lies inside the level-1 page region, which lies inside the
    // level-2 page region.
    const Region& r1 =
        placement_.pages(1)[static_cast<size_t>(loc.page[0])].region;
    const Region& r2 =
        placement_.pages(2)[static_cast<size_t>(loc.page[1])].region;
    EXPECT_TRUE(r1.contains(loc.node));
    EXPECT_TRUE(r2.contains(loc.node));
    EXPECT_EQ(placement_.page_at(id, 1), loc.page[0]);
    EXPECT_EQ(placement_.page_at(id, 2), loc.page[1]);
  }
}

TEST_F(PlacementFixture, DistinctCopiesOfAVariableOnDistinctNodes) {
  // The 9 copies of a variable live in 9 distinct (module, page) slots;
  // in the non-degraded regime they should land on >= q distinct nodes.
  Rng rng(12);
  for (int t = 0; t < 50; ++t) {
    const i64 var = rng.range(0, params_.num_vars() - 1);
    std::set<std::pair<int, int>> nodes;
    std::set<u64> slots;
    for (i64 c1 = 0; c1 < 3; ++c1) {
      for (i64 c2 = 0; c2 < 3; ++c2) {
        const CopyLoc loc = placement_.locate(map_.copy_id(var, {c1, c2}));
        nodes.insert({loc.node.r, loc.node.c});
        slots.insert((static_cast<u64>(loc.page[0]) << 20) ^
                     static_cast<u64>(loc.node.r * 1000 + loc.node.c));
      }
    }
    EXPECT_GE(nodes.size(), 3u) << "var " << var;
    EXPECT_EQ(slots.size(), 9u) << "var " << var;
  }
}

TEST_F(PlacementFixture, StorageIsBalancedAcrossNodes) {
  // Count copies per node over a sample of variables; no node should carry
  // more than a small multiple of the average.
  std::map<std::pair<int, int>, i64> per_node;
  const i64 sample = 500;
  Rng rng(13);
  for (i64 t = 0; t < sample; ++t) {
    const i64 var = rng.range(0, params_.num_vars() - 1);
    for (i64 c1 = 0; c1 < 3; ++c1) {
      for (i64 c2 = 0; c2 < 3; ++c2) {
        const CopyLoc loc = placement_.locate(map_.copy_id(var, {c1, c2}));
        ++per_node[{loc.node.r, loc.node.c}];
      }
    }
  }
  const double avg = static_cast<double>(sample * 9) / 1024.0;
  i64 worst = 0;
  for (const auto& [node, cnt] : per_node) worst = std::max(worst, cnt);
  EXPECT_LE(static_cast<double>(worst), 8.0 * avg + 8.0);
}

TEST(PlacementDegraded, PacksPagesWhenMeshIsTooSmall) {
  // 8x8 mesh with M = 1080 (d1 = 4, m1 = 81, level-1 pages = 243 > 64).
  HmosParams params(3, 2, 1080, 8, 8);
  MemoryMap map(params);
  Placement placement(map, Region(0, 0, 8, 8));
  EXPECT_TRUE(placement.degraded());
  // Still: every copy locatable, inside its level-2 page region.
  Rng rng(14);
  for (int t = 0; t < 200; ++t) {
    const i64 var = rng.range(0, params.num_vars() - 1);
    const u64 id = map.copy_id(var, {rng.range(0, 2), rng.range(0, 2)});
    const CopyLoc loc = placement.locate(id);
    const Region& r2 =
        placement.pages(2)[static_cast<size_t>(loc.page[1])].region;
    EXPECT_TRUE(r2.contains(loc.node));
  }
}

}  // namespace
}  // namespace meshpram
