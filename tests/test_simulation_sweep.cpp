// Cross-configuration property sweep of the full simulation.
//
// For every combination of branching q, depth k, mesh size, memory size, and
// sort mode that the implementation supports, runs several PRAM steps of
// random mixed reads/writes and checks:
//   * results match a flat reference memory (quorum consistency end to end),
//   * Theorem 3's per-page bound holds in every culling iteration,
//   * the packet count equals n_active * (floor(q/2)+1)^k (minimal target
//     sets after the final culling iteration),
//   * the step cost is at least the mesh diameter (the paper's Omega(sqrt n)
//     lower bound) on full request sets.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "protocol/simulator.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace meshpram {
namespace {

struct SweepCase {
  i64 q;
  int k;
  int side;
  i64 num_vars;
  SortMode mode;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const auto& c = info.param;
  return "q" + std::to_string(c.q) + "_k" + std::to_string(c.k) + "_s" +
         std::to_string(c.side) + "_M" + std::to_string(c.num_vars) +
         (c.mode == SortMode::Analytic ? "_analytic" : "_sim");
}

class SimulationSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SimulationSweep, RandomMixedWorkloadMatchesReference) {
  set_log_level(LogLevel::Error);
  const auto& c = GetParam();
  SimConfig cfg;
  cfg.mesh_rows = cfg.mesh_cols = c.side;
  cfg.num_vars = c.num_vars;
  cfg.q = c.q;
  cfg.k = c.k;
  cfg.sort_mode = c.mode;
  PramMeshSimulator sim(cfg);
  const i64 n = sim.processors();
  Rng rng(static_cast<u64>(c.q * 1000 + c.k * 100 + c.side));
  std::unordered_map<i64, i64> reference;

  const i64 quorum = ipow(c.q / 2 + 1, c.k);
  for (int step = 0; step < 4; ++step) {
    std::vector<AccessRequest> reqs(static_cast<size_t>(n));
    std::set<i64> used;
    i64 active = 0;
    for (i64 i = 0; i < n; ++i) {
      if (rng.below(10) == 0) continue;  // some processors idle
      i64 v = rng.range(0, cfg.num_vars - 1);
      while (used.contains(v)) v = (v + 1) % cfg.num_vars;
      used.insert(v);
      const bool write = rng.below(2) == 0;
      reqs[static_cast<size_t>(i)] =
          AccessRequest{v, write ? Op::Write : Op::Read,
                        write ? rng.range(1, 1 << 30) : 0};
      ++active;
    }
    StepStats st;
    const auto results = sim.step(reqs, &st);

    // Consistency vs the flat reference.
    for (i64 i = 0; i < n; ++i) {
      const auto& r = reqs[static_cast<size_t>(i)];
      if (r.var < 0 || r.op != Op::Read) continue;
      const auto it = reference.find(r.var);
      ASSERT_EQ(results[static_cast<size_t>(i)],
                it == reference.end() ? 0 : it->second)
          << case_name({GetParam(), 0}) << " step " << step << " var "
          << r.var;
    }
    for (i64 i = 0; i < n; ++i) {
      const auto& r = reqs[static_cast<size_t>(i)];
      if (r.var >= 0 && r.op == Op::Write) reference[r.var] = r.value;
    }

    // Theorem 3 in every culling iteration.
    ASSERT_EQ(static_cast<int>(st.culling.max_page_load.size()), c.k);
    for (int lvl = 1; lvl <= c.k; ++lvl) {
      EXPECT_LE(st.culling.max_page_load[static_cast<size_t>(lvl - 1)],
                st.culling.bound[static_cast<size_t>(lvl - 1)])
          << "Theorem 3 violated, level " << lvl;
    }

    // Minimal target sets: quorum packets per active processor.
    EXPECT_EQ(st.packets, active * quorum);

    // Omega(sqrt(n)) diameter lower bound (full-ish request sets).
    if (active > n / 2) {
      EXPECT_GE(st.total_steps, 2 * (c.side - 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SimulationSweep,
    ::testing::Values(
        // Depth sweep at q = 3.
        SweepCase{3, 1, 8, 117, SortMode::Simulated},
        SweepCase{3, 2, 8, 1080, SortMode::Simulated},
        SweepCase{3, 3, 8, 1080, SortMode::Simulated},
        // Branching sweep (q = 4 needs GF(4); q = 5 odd majority).
        SweepCase{4, 1, 8, 320, SortMode::Simulated},
        SweepCase{4, 2, 8, 1344, SortMode::Simulated},
        SweepCase{5, 1, 12, 750, SortMode::Simulated},
        SweepCase{5, 2, 12, 3875, SortMode::Simulated},
        // Rectangular-ish larger mesh, both sort modes.
        SweepCase{3, 2, 16, 1080, SortMode::Simulated},
        SweepCase{3, 2, 16, 9801, SortMode::Analytic},
        SweepCase{3, 2, 32, 4096, SortMode::Analytic},
        // Degraded placement on purpose (level-1 pages outnumber the nodes).
        SweepCase{3, 2, 8, 1080, SortMode::Analytic}),
    case_name);

TEST(SimulationSweep, NonSquareMesh) {
  set_log_level(LogLevel::Error);
  SimConfig cfg;
  cfg.mesh_rows = 8;
  cfg.mesh_cols = 16;  // the machine need not be square
  cfg.num_vars = 1080;
  PramMeshSimulator sim(cfg);
  const i64 n = sim.processors();
  std::vector<i64> vars(static_cast<size_t>(n));
  std::vector<i64> vals(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    vars[static_cast<size_t>(i)] = (i * 5 + 2) % 1080;
    vals[static_cast<size_t>(i)] = i + 1;
  }
  // Dedupe (5*i+2 mod 1080 is injective for i < 216 > 128). All distinct.
  sim.write_step(vars, vals);
  const auto got = sim.read_step(vars);
  for (i64 i = 0; i < n; ++i) {
    ASSERT_EQ(got[static_cast<size_t>(i)], vals[static_cast<size_t>(i)]);
  }
}

TEST(SimulationSweep, RepeatedStepsAdvanceTimestamps) {
  set_log_level(LogLevel::Error);
  SimConfig cfg;
  cfg.mesh_rows = cfg.mesh_cols = 8;
  cfg.num_vars = 1080;
  PramMeshSimulator sim(cfg);
  EXPECT_EQ(sim.now(), 0);
  for (i64 round = 0; round < 6; ++round) {
    sim.write_step({42}, {round});
    EXPECT_EQ(sim.read_step({42})[0], round);
  }
  EXPECT_EQ(sim.now(), 12);
}

}  // namespace
}  // namespace meshpram
