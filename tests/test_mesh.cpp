// Tests for the mesh machine substrate: regions, snake order, grid splits,
// buffers/stores, step accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "mesh/machine.hpp"
#include "mesh/region.hpp"
#include "mesh/step_counter.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace meshpram {
namespace {

TEST(Geometry, ManhattanAndSteps) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({2, 2}, {2, 2}), 0);
  EXPECT_EQ(step_toward({1, 1}, Dir::North), (Coord{0, 1}));
  EXPECT_EQ(step_toward({1, 1}, Dir::South), (Coord{2, 1}));
  EXPECT_EQ(step_toward({1, 1}, Dir::East), (Coord{1, 2}));
  EXPECT_EQ(step_toward({1, 1}, Dir::West), (Coord{1, 0}));
}

TEST(Region, SnakeRoundTripAndAdjacency) {
  for (const auto& [rows, cols] : std::vector<std::pair<int, int>>{
           {1, 1}, {1, 7}, {7, 1}, {3, 5}, {5, 3}, {8, 8}}) {
    const Region g(2, 3, rows, cols);
    std::set<std::pair<int, int>> seen;
    Coord prev{};
    for (i64 s = 0; s < g.size(); ++s) {
      const Coord x = g.at_snake(s);
      EXPECT_TRUE(g.contains(x));
      EXPECT_EQ(g.snake_of(x), s);
      seen.insert({x.r, x.c});
      if (s > 0) {
        // Consecutive snake positions are mesh neighbors.
        EXPECT_EQ(manhattan(prev, x), 1)
            << rows << 'x' << cols << " at s=" << s;
      }
      prev = x;
    }
    EXPECT_EQ(static_cast<i64>(seen.size()), g.size());
  }
}

TEST(Region, RejectsOutOfRange) {
  const Region g(0, 0, 4, 4);
  EXPECT_THROW(g.at_snake(-1), ConfigError);
  EXPECT_THROW(g.at_snake(16), ConfigError);
  EXPECT_THROW(g.snake_of({4, 0}), ConfigError);
  EXPECT_THROW(Region(0, 0, 0, 3), ConfigError);
}

TEST(Region, GridSplitPartitionProperties) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const int rows = static_cast<int>(rng.range(1, 20));
    const int cols = static_cast<int>(rng.range(1, 20));
    const Region g(static_cast<int>(rng.range(0, 5)),
                   static_cast<int>(rng.range(0, 5)), rows, cols);
    const i64 k = rng.range(1, g.size());
    const auto subs = g.grid_split(k);
    ASSERT_EQ(static_cast<i64>(subs.size()), k);
    // Disjoint, contained, non-empty.
    std::set<std::pair<int, int>> covered;
    i64 total = 0;
    for (const Region& sub : subs) {
      EXPECT_GE(sub.size(), 1);
      total += sub.size();
      for (i64 s = 0; s < sub.size(); ++s) {
        const Coord x = sub.at_snake(s);
        EXPECT_TRUE(g.contains(x));
        EXPECT_TRUE(covered.insert({x.r, x.c}).second)
            << "overlap at " << x << " (k=" << k << ", region " << g << ")";
      }
    }
    EXPECT_LE(total, g.size());
    // Near-even: largest subregion is at most a small multiple of the
    // average (proportional cuts keep areas within a factor ~4).
    i64 largest = 0;
    for (const Region& sub : subs) largest = std::max(largest, sub.size());
    EXPECT_LE(largest, 4 * ceil_div(g.size(), k) + 4)
        << "k=" << k << " region " << g;
  }
}

TEST(Region, GridSplitExactTilings) {
  const Region g(0, 0, 8, 8);
  for (i64 k : {1, 2, 4, 8, 16, 32, 64}) {
    const auto subs = g.grid_split(k);
    i64 total = 0;
    for (const auto& sub : subs) total += sub.size();
    EXPECT_EQ(total, 64) << "k=" << k;  // powers of two tile exactly
  }
}

TEST(Region, GridSplitRejectsBadK) {
  const Region g(0, 0, 3, 3);
  EXPECT_THROW(g.grid_split(0), ConfigError);
  EXPECT_THROW(g.grid_split(10), ConfigError);
}

TEST(Mesh, NodeIdRoundTrip) {
  Mesh mesh(5, 7);
  EXPECT_EQ(mesh.size(), 35);
  for (i32 id = 0; id < mesh.size(); ++id) {
    EXPECT_EQ(mesh.node_id(mesh.coord(id)), id);
  }
  EXPECT_THROW(mesh.coord(35), ConfigError);
  EXPECT_THROW(mesh.node_id({5, 0}), ConfigError);
}

TEST(Mesh, BuffersAndLoads) {
  Mesh mesh(4, 4);
  const Region g = mesh.whole();
  EXPECT_EQ(mesh.total_packets(g), 0);
  Packet p;
  p.key = 1;
  mesh.buf(0).push_back(p);
  mesh.buf(0).push_back(p);
  mesh.buf(5).push_back(p);
  EXPECT_EQ(mesh.total_packets(g), 3);
  EXPECT_EQ(mesh.max_load(g), 2);
  const Region corner(0, 0, 1, 1);
  EXPECT_EQ(mesh.total_packets(corner), 2);
  mesh.clear_buffers();
  EXPECT_EQ(mesh.total_packets(g), 0);
}

TEST(Mesh, DrainCollectsInSnakeOrderAndEmpties) {
  Mesh mesh(2, 3);
  for (i32 id = 0; id < mesh.size(); ++id) {
    Packet p;
    p.key = static_cast<u64>(id);
    mesh.buf(id).push_back(p);
  }
  const auto all = mesh.drain(mesh.whole());
  ASSERT_EQ(all.size(), 6u);
  // Snake order of a 2x3: (0,0)(0,1)(0,2)(1,2)(1,1)(1,0) = ids 0,1,2,5,4,3.
  const std::vector<u64> want{0, 1, 2, 5, 4, 3};
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].key, want[i]);
  EXPECT_EQ(mesh.total_packets(mesh.whole()), 0);
}

TEST(Mesh, StoresPersistAcrossBufferClears) {
  Mesh mesh(2, 2);
  mesh.store(3)[42] = CopySlot{7, 1};
  mesh.clear_buffers();
  EXPECT_EQ(mesh.store(3)[42].value, 7);
  EXPECT_EQ(mesh.store(3)[42].timestamp, 1);
}

TEST(StepCounter, AggregatesByPhase) {
  StepCounter c;
  c.add("sort", 10);
  c.add("route", 5);
  c.add("sort", 3);
  EXPECT_EQ(c.total(), 18);
  EXPECT_EQ(c.by_phase().at("sort"), 13);
  EXPECT_EQ(c.by_phase().at("route"), 5);
  EXPECT_THROW(c.add("x", -1), ConfigError);
  c.reset();
  EXPECT_EQ(c.total(), 0);
}

TEST(StepCounter, ParallelCostTakesMax) {
  ParallelCost pc;
  pc.observe(3);
  pc.observe(10);
  pc.observe(5);
  EXPECT_EQ(pc.max(), 10);
  EXPECT_THROW(pc.observe(-1), ConfigError);
}

TEST(Packet, TrailPushBounded) {
  Packet p;
  for (int i = 0; i < 8; ++i) p.push_trail(i);
  EXPECT_EQ(p.trail_len, 8);
  EXPECT_EQ(p.trail[0], 0);
  EXPECT_EQ(p.trail[7], 7);
  EXPECT_THROW(p.push_trail(8), InternalError);  // overflow is a bug
}

}  // namespace
}  // namespace meshpram
