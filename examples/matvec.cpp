// Dense matrix-vector product on the simulated mesh PRAM, plus the CRCW
// combining frontend.
//
// The skewed schedule keeps the natural algorithm EREW; the second part
// shows the CombiningBackend accepting genuinely concurrent accesses
// (everyone reads x[0]) and resolving them with the classic CRCW->EREW
// reduction.
#include <iostream>

#include "algo/staples.hpp"
#include "pram/combining.hpp"
#include "pram/mesh_backend.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace meshpram;

int main() {
  const i64 s = 16;  // 16x16 matrix, 16 processors on an 8x8 mesh
  Rng rng(31);
  std::vector<i64> a(static_cast<size_t>(s * s));
  std::vector<i64> x(static_cast<size_t>(s));
  for (auto& v : a) v = rng.range(-9, 9);
  for (auto& v : x) v = rng.range(-9, 9);

  SimConfig cfg;
  cfg.mesh_rows = cfg.mesh_cols = 8;
  cfg.num_vars = 1080;
  MeshBackend mesh(cfg);

  MatVecProgram prog(s);
  prog.preload(mesh, a, x);
  run_program(prog, mesh);

  // Reference check.
  bool ok = true;
  for (i64 i = 0; i < s; ++i) {
    i64 want = 0;
    for (i64 j = 0; j < s; ++j) {
      want += a[static_cast<size_t>(i * s + j)] * x[static_cast<size_t>(j)];
    }
    ok &= prog.result()[static_cast<size_t>(i)] == want;
  }
  std::cout << "b = A x over a " << s << 'x' << s << " matrix: "
            << (ok ? "correct" : "MISMATCH") << ", total mesh steps "
            << mesh.total_mesh_steps() << " over " << mesh.pram_steps()
            << " PRAM steps\n";

  // CRCW: all 16 processors read the same variable concurrently.
  CombiningBackend crcw(mesh);
  crcw.step({{100, Op::Write, 777}});
  std::vector<AccessRequest> everyone(static_cast<size_t>(s),
                                      {100, Op::Read, 0});
  const auto r = crcw.step(everyone);
  bool crcw_ok = true;
  for (i64 i = 0; i < s; ++i) crcw_ok &= r[static_cast<size_t>(i)] == 777;
  std::cout << "CRCW concurrent read of one variable by " << s
            << " processors: " << (crcw_ok ? "all saw 777" : "MISMATCH")
            << " (" << crcw.combined_groups() << " group combined)\n";
  return ok && crcw_ok ? 0 : 1;
}
