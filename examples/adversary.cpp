// The worst-case story from the paper's introduction, played out.
//
// An adversary who knows the memory map requests n variables that all live
// in the same module. With a single copy per variable — whether placed
// modularly or by a fixed hash — the hot module serializes all n accesses.
// The HMOS + CULLING scheme bounds the worst case by construction: no
// request set can load any level-i page beyond Theorem 3's 4 q^k n^{1-1/2^i}.
#include <iostream>

#include "pram/baselines/single_copy.hpp"
#include "protocol/simulator.hpp"
#include "util/table.hpp"

using namespace meshpram;

int main() {
  const int rows = 16, cols = 16;
  const i64 n = static_cast<i64>(rows) * cols;
  const i64 M = 65536;  // alpha = 2: every node owns 256 variables

  // --- single copy, modular placement: all requests hit node 5 ------------
  SingleCopySim modular(rows, cols, M, SingleCopyPlacement::Modular);
  std::vector<AccessRequest> hot(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) hot[static_cast<size_t>(i)] = {5 + n * i, Op::Read, 0};
  SingleCopyStats mod_stats;
  modular.step(hot, &mod_stats);

  // --- single copy, hashed placement: adversary scans for collisions ------
  SingleCopySim hashed(rows, cols, M, SingleCopyPlacement::Hashed, 1234);
  std::vector<AccessRequest> hot2;
  const i32 target = hashed.home(0);
  for (i64 v = 0; v < M && static_cast<i64>(hot2.size()) < n; ++v) {
    if (hashed.home(v) == target) hot2.push_back({v, Op::Read, 0});
  }
  SingleCopyStats hash_stats;
  const i64 found = static_cast<i64>(hot2.size());
  hashed.step(hot2, &hash_stats);

  // --- the deterministic scheme on the same request set -------------------
  SimConfig cfg;
  cfg.mesh_rows = rows;
  cfg.mesh_cols = cols;
  cfg.num_vars = M;
  cfg.q = 3;
  cfg.k = 2;
  PramMeshSimulator sim(cfg);
  std::vector<AccessRequest> hmos_reqs(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    hmos_reqs[static_cast<size_t>(i)] = {5 + n * i, Op::Read, 0};
  }
  StepStats hmos_stats;
  sim.step(hmos_reqs, &hmos_stats);

  std::cout << "adversarial step: " << n << " requests aimed at one module "
            << "(M = " << M << ", mesh " << rows << 'x' << cols << ")\n\n";
  Table t({"scheme", "total steps", "memory serialization",
           "worst culled page load"});
  t.add("single copy (modular)", mod_stats.total_steps,
        mod_stats.service_steps, "-");
  t.add("single copy (hashed)*", hash_stats.total_steps,
        hash_stats.service_steps, "-");
  t.add("HMOS q=3 k=2 (this paper)", hmos_stats.total_steps, "-",
        hmos_stats.culling.max_page_load.empty()
            ? std::string("-")
            : std::to_string(hmos_stats.culling.max_page_load.back()));
  t.print(std::cout);
  std::cout << "* adversary found " << found
            << " colliding variables by scanning the known hash\n"
            << "\nThe single-copy schemes serialize at the hot module; the "
               "HMOS bounds page\ncongestion for EVERY request set "
               "(Theorem 3), so no adversary exists.\n";
  return 0;
}
