// List ranking by pointer jumping — the classic irregular-access PRAM
// workload (every round chases pointers scattered across the shared
// memory, the pattern that punishes naive memory distributions).
// Runs on the ideal PRAM and on the mesh simulation; verifies equality.
#include <iostream>
#include <numeric>

#include "algo/staples.hpp"
#include "pram/mesh_backend.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace meshpram;

int main() {
  const i64 n = 256;
  Rng rng(13);

  // Random list: a shuffled chain over n nodes.
  std::vector<i64> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<i64> succ(static_cast<size_t>(n), -1);
  for (i64 i = 0; i + 1 < n; ++i) {
    succ[static_cast<size_t>(order[static_cast<size_t>(i)])] =
        order[static_cast<size_t>(i + 1)];
  }

  IdealBackend ideal(n, 2 * n + 16);
  ListRankingProgram p_ideal(succ);
  const i64 steps = run_program(p_ideal, ideal);

  SimConfig cfg;
  cfg.mesh_rows = 16;
  cfg.mesh_cols = 16;
  cfg.num_vars = 1080;
  MeshBackend mesh(cfg);
  ListRankingProgram p_mesh(succ);
  run_program(p_mesh, mesh);

  const auto want = ListRankingProgram::expected(succ);
  const bool ok = p_ideal.ranks() == want && p_mesh.ranks() == want;
  std::cout << "list ranking over " << n << " nodes: "
            << (ok ? "mesh == ideal == reference" : "MISMATCH") << '\n';

  Table t({"backend", "PRAM steps", "mesh steps", "mesh steps / PRAM step"});
  t.add("ideal", steps, 0, 0);
  t.add("mesh 16x16", steps, mesh.total_mesh_steps(),
        static_cast<double>(mesh.total_mesh_steps()) /
            static_cast<double>(steps));
  t.print(std::cout);
  return ok ? 0 : 1;
}
