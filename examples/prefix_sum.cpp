// Parallel prefix sums (Hillis-Steele) as a PRAM program, executed twice:
// on the ideal flat-memory PRAM and on the simulated mesh. The results must
// match exactly; the mesh run additionally reports the slowdown per PRAM
// step — the quantity Theorem 1 bounds.
#include <iostream>

#include "algo/staples.hpp"
#include "pram/mesh_backend.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace meshpram;

int main() {
  const i64 n = 256;  // 16x16 mesh
  Rng rng(7);
  std::vector<i64> input(static_cast<size_t>(n));
  for (auto& x : input) x = rng.range(-1000, 1000);

  IdealBackend ideal(n, 2 * n + 16);
  PrefixSumProgram p_ideal(input);
  const i64 steps = run_program(p_ideal, ideal);

  SimConfig cfg;
  cfg.mesh_rows = 16;
  cfg.mesh_cols = 16;
  cfg.num_vars = 1080;  // f(4) with q=3
  MeshBackend mesh(cfg);
  PrefixSumProgram p_mesh(input);
  run_program(p_mesh, mesh);

  const bool ok = p_ideal.result() == p_mesh.result() &&
                  p_ideal.result() == PrefixSumProgram::expected(input);
  std::cout << "prefix sums over " << n << " values: "
            << (ok ? "mesh == ideal == reference" : "MISMATCH") << '\n';

  Table t({"backend", "PRAM steps", "mesh steps", "mesh steps / PRAM step"});
  t.add("ideal", steps, 0, 0);
  t.add("mesh 16x16", steps, mesh.total_mesh_steps(),
        static_cast<double>(mesh.total_mesh_steps()) /
            static_cast<double>(steps));
  t.print(std::cout);
  std::cout << "(Theorem 1: each PRAM step costs ~n^{1/2+eps} = "
            << "16^(1+..) mesh steps on a 16x16 mesh)\n";
  return ok ? 0 : 1;
}
