// Quickstart: simulate an EREW PRAM on a 32x32 mesh-connected computer.
//
// Builds the full stack (BIBD level graphs, HMOS placement, access protocol)
// behind one facade, performs a write step and a read step, and prints where
// the simulated time went.
#include <iostream>

#include "protocol/simulator.hpp"
#include "util/table.hpp"

using namespace meshpram;

int main() {
  // n = 1024 processors, shared memory of 4096 variables (alpha ~ 1.2),
  // q = 3, k = 2 -> every variable is replicated into 9 copies.
  SimConfig cfg;
  cfg.mesh_rows = 32;
  cfg.mesh_cols = 32;
  cfg.num_vars = 4096;
  cfg.q = 3;
  cfg.k = 2;
  PramMeshSimulator sim(cfg);

  std::cout << sim.params().describe() << '\n';

  // One PRAM write step: processor i writes 100+i into variable 3i+1.
  const i64 n = sim.processors();
  std::vector<i64> vars(static_cast<size_t>(n));
  std::vector<i64> vals(static_cast<size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    vars[static_cast<size_t>(i)] = (3 * i + 1) % cfg.num_vars;
    vals[static_cast<size_t>(i)] = 100 + i;
  }
  StepStats wstats;
  sim.write_step(vars, vals, &wstats);

  // One PRAM read step of the same variables.
  StepStats rstats;
  const auto got = sim.read_step(vars, &rstats);

  i64 wrong = 0;
  for (i64 i = 0; i < n; ++i) {
    if (got[static_cast<size_t>(i)] != vals[static_cast<size_t>(i)]) ++wrong;
  }
  std::cout << "read-back: " << (n - wrong) << '/' << n << " values correct\n\n";

  Table t({"step", "total mesh steps", "culling", "forward", "return",
           "packets"});
  t.add("write", wstats.total_steps, wstats.culling_steps,
        wstats.forward_steps, wstats.return_steps, wstats.packets);
  t.add("read", rstats.total_steps, rstats.culling_steps,
        rstats.forward_steps, rstats.return_steps, rstats.packets);
  t.print(std::cout);

  std::cout << "\nTheorem 3 check (culling congestion, write step):\n";
  Table b({"level", "max page load", "bound 4q^k n^{1-1/2^i}"});
  for (size_t i = 0; i < wstats.culling.max_page_load.size(); ++i) {
    b.add(i + 1, wstats.culling.max_page_load[i], wstats.culling.bound[i]);
  }
  b.print(std::cout);
  return wrong == 0 ? 0 : 1;
}
